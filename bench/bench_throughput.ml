(* fig1-tput-hdd, fig2-tput-engines, fig3-tput-ssd: the paper's headline
   throughput graphs. Shape targets:
   - on a disk, RapiLog sits with the unsafe baselines, far above sync
     at low client counts;
   - group commit narrows the gap as clients grow;
   - the shape holds across engine profiles;
   - on an SSD the sync penalty is small, so all curves bunch up. *)

open Harness
open Bench_support

let sweep_report ~title ~config ~clients ~modes =
  Report.section title;
  print_config_line config;
  let rows = throughput_sweep ~config ~clients ~modes in
  Report.series ~title:"throughput (txn/s, committed in window)"
    ~x_label:"clients"
    ~columns:(List.map Scenario.mode_name modes)
    ~rows;
  (* The shape summary the paper's text states. *)
  (match rows with
  | (_, first_row) :: _ ->
      let nth i = List.nth first_row i in
      let idx mode =
        let rec find i = function
          | [] -> None
          | m :: _ when m = mode -> Some i
          | _ :: rest -> find (i + 1) rest
        in
        find 0 modes
      in
      (match (idx Scenario.Native_sync, idx Scenario.Rapilog) with
      | Some ni, Some ri ->
          Report.kvf "rapilog vs native-sync at 1 client" "%.1fx" (nth ri /. nth ni)
      | _ -> ())
  | [] -> ());
  match List.rev rows with
  | (_, last_row) :: _ -> (
      let idx mode =
        let rec find i = function
          | [] -> None
          | m :: _ when m = mode -> Some i
          | _ :: rest -> find (i + 1) rest
        in
        find 0 modes
      in
      match (idx Scenario.Native_sync, idx Scenario.Rapilog) with
      | Some ni, Some ri ->
          Report.kvf "rapilog vs native-sync at max clients" "%.1fx"
            (List.nth last_row ri /. List.nth last_row ni)
      | _ -> ())
  | [] -> ()

let fig1 =
  {
    id = "fig1-tput-hdd";
    title = "Fig 1: TPC-C-lite throughput vs clients, 7200rpm disk";
    description =
      "TPC-C-lite throughput vs clients on the 7200 rpm disk, all modes";
    run =
      (fun ~quick ->
        sweep_report
          ~title:"Fig 1: TPC-C-lite throughput vs clients, 7200 rpm log disk"
          ~config:(base_config ~quick)
          ~clients:(client_sweep ~quick) ~modes:all_modes);
  }

let fig2 =
  {
    id = "fig2-tput-engines";
    title = "Fig 2: cross-engine throughput (pg / innodb / commercial profiles)";
    description =
      "throughput across pg/innodb/commercial engine profiles, sync vs rapilog";
    run =
      (fun ~quick ->
        Report.section
          "Fig 2: throughput across engine profiles, 7200 rpm log disk";
        let clients = if quick then [ 1; 8 ] else [ 1; 8; 32 ] in
        let modes = [ Scenario.Native_sync; Scenario.Virt_sync; Scenario.Rapilog ] in
        List.iter
          (fun engine ->
            let config =
              Scen.Builder.(start ~base:(base_config ~quick) () |> profile engine |> build)
            in
            let rows = throughput_sweep ~config ~clients ~modes in
            Report.series
              ~title:
                (Printf.sprintf "engine profile: %s"
                   engine.Dbms.Engine_profile.name)
              ~x_label:"clients"
              ~columns:(List.map Scenario.mode_name modes)
              ~rows)
          Dbms.Engine_profile.all;
        Report.note
          "shape target: rapilog >= virt-sync for every engine, largest gains at 1 client")
  }

let fig3 =
  {
    id = "fig3-tput-ssd";
    title = "Fig 3: TPC-C-lite throughput vs clients, SSD";
    description =
      "TPC-C-lite throughput vs clients on the SATA SSD, all modes";
    run =
      (fun ~quick ->
        let config = Scen.Builder.(start ~base:(base_config ~quick) () |> ssd |> build) in
        sweep_report ~title:"Fig 3: TPC-C-lite throughput vs clients, SSD"
          ~config ~clients:(client_sweep ~quick) ~modes:all_modes;
        Report.note
          "shape target: curves bunch up - sync logging is cheap on flash, so rapilog's edge shrinks")
  }

let experiments = [ fig1; fig2; fig3 ]
