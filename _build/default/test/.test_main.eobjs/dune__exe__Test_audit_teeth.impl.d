test/test_audit_teeth.ml: Alcotest Dbms Desim Hashtbl Hypervisor List Printf Process Rapilog Sim Storage String Testu Time
