type t = {
  mutable clock : Time.t;
  queue : (unit -> unit) Event_queue.t;
  rng : Rng.t;
  seed : int64;
  mutable executed : int;
}

let create ?(seed = 1L) () =
  {
    clock = Time.zero;
    queue = Event_queue.create ();
    rng = Rng.create seed;
    seed;
    executed = 0;
  }

let now t = t.clock
let rng t = t.rng
let seed t = t.seed
let events_executed t = t.executed

let schedule_at t time f =
  assert (Time.(t.clock <= time));
  Event_queue.add t.queue ~time f

let schedule_after t d f =
  assert (Time.compare_span d Time.zero_span >= 0);
  Event_queue.add t.queue ~time:(Time.add t.clock d) f

let schedule_now t f = Event_queue.add t.queue ~time:t.clock f

(* The hot path: no option, no tuple — the queue hands the closure back
   unboxed, so stepping allocates nothing beyond what the event body
   itself allocates. *)
let step t =
  let q = t.queue in
  if Event_queue.is_empty q then false
  else begin
    t.clock <- Event_queue.min_time q;
    t.executed <- t.executed + 1;
    (Event_queue.pop_min q) ();
    true
  end

let run_to_event t target =
  while t.executed < target && step t do () done;
  t.executed >= target

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some limit ->
      let q = t.queue in
      let continue = ref true in
      while !continue do
        if (not (Event_queue.is_empty q)) && Time.(Event_queue.min_time q <= limit)
        then ignore (step t)
        else continue := false
      done;
      if Time.(t.clock < limit) then t.clock <- limit

let pending t = Event_queue.length t.queue
let max_pending t = Event_queue.max_length t.queue
let events_scheduled t = Event_queue.scheduled t.queue
