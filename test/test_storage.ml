(* Tests for the block-device models. *)

open Desim
open Testu

let sector = 512
let data_of char sectors = String.make (sector * sectors) char

let small_hdd =
  {
    Storage.Hdd.default_7200rpm with
    Storage.Hdd.tracks = 1024;
    sectors_per_track = 1000;
  }

let make_hdd sim = Storage.Hdd.create sim small_hdd
let make_ssd sim = Storage.Ssd.create sim Storage.Ssd.default

(* -- Media ----------------------------------------------------------- *)

let media_reads_zero () =
  let media = Storage.Block.Media.create ~sector_size:sector ~capacity_sectors:100 in
  let data = Storage.Block.Media.read media ~lba:5 ~sectors:2 in
  Alcotest.(check string) "zeros" (String.make (2 * sector) '\000') data

let media_roundtrip () =
  let media = Storage.Block.Media.create ~sector_size:sector ~capacity_sectors:100 in
  Storage.Block.Media.write media ~lba:10 ~data:(data_of 'x' 3);
  Alcotest.(check string) "roundtrip" (data_of 'x' 3)
    (Storage.Block.Media.read media ~lba:10 ~sectors:3);
  Alcotest.(check int) "extent" 13 (Storage.Block.Media.extent media)

let media_overwrite () =
  let media = Storage.Block.Media.create ~sector_size:sector ~capacity_sectors:100 in
  Storage.Block.Media.write media ~lba:0 ~data:(data_of 'a' 2);
  Storage.Block.Media.write media ~lba:1 ~data:(data_of 'b' 1);
  let read = Storage.Block.Media.read media ~lba:0 ~sectors:2 in
  Alcotest.(check string) "first sector intact" (data_of 'a' 1)
    (String.sub read 0 sector);
  Alcotest.(check string) "second replaced" (data_of 'b' 1)
    (String.sub read sector sector)

let media_torn_prefix_prop =
  prop "torn write persists only a prefix" QCheck2.Gen.(int_range 0 10_000)
    (fun salt ->
      let media =
        Storage.Block.Media.create ~sector_size:sector ~capacity_sectors:64
      in
      let rng = Rng.create (Int64.of_int salt) in
      Storage.Block.Media.write_torn media ~rng ~lba:0 ~data:(data_of 'z' 8);
      let read = Storage.Block.Media.read media ~lba:0 ~sectors:8 in
      (* Some prefix is 'z's, the rest zeros, with no interleaving. *)
      let rec scan i in_tail =
        if i >= 8 then true
        else
          let s = String.sub read (i * sector) sector in
          if String.equal s (data_of 'z' 1) then (not in_tail) && scan (i + 1) false
          else if String.equal s (String.make sector '\000') then scan (i + 1) true
          else false
      in
      scan 0 false)

(* -- Media copy-on-write fork (PR 8) ---------------------------------- *)

let media_fork_isolation () =
  let m = Storage.Block.Media.create ~sector_size:sector ~capacity_sectors:64 in
  Storage.Block.Media.write m ~lba:3 ~data:(data_of 'p' 2);
  let child = Storage.Block.Media.fork m in
  (* Pre-fork state is visible on both sides... *)
  Alcotest.(check string) "child sees pre-fork" (data_of 'p' 2)
    (Storage.Block.Media.read child ~lba:3 ~sectors:2);
  (* ...and post-fork writes stay on their own side, including writes
     landing inside the same (shared) page. *)
  Storage.Block.Media.write m ~lba:4 ~data:(data_of 'P' 1);
  Storage.Block.Media.write child ~lba:3 ~data:(data_of 'c' 1);
  Alcotest.(check string) "parent diverged" (data_of 'p' 1 ^ data_of 'P' 1)
    (Storage.Block.Media.read m ~lba:3 ~sectors:2);
  Alcotest.(check string) "child diverged" (data_of 'c' 1 ^ data_of 'p' 1)
    (Storage.Block.Media.read child ~lba:3 ~sectors:2);
  (* A second fork of the parent sees the parent's divergence only. *)
  let child2 = Storage.Block.Media.fork m in
  Alcotest.(check string) "second fork tracks parent" (data_of 'p' 1 ^ data_of 'P' 1)
    (Storage.Block.Media.read child2 ~lba:3 ~sectors:2)

let media_fork_rejects_overlay () =
  let m = Storage.Block.Media.create ~sector_size:sector ~capacity_sectors:64 in
  let ov = Storage.Block.Media.overlay m in
  Alcotest.check_raises "overlay fork rejected"
    (Invalid_argument "Media.fork: fork a root image, not an overlay")
    (fun () -> ignore (Storage.Block.Media.fork ov))

let media_overlay_over_fork () =
  let m = Storage.Block.Media.create ~sector_size:sector ~capacity_sectors:64 in
  Storage.Block.Media.write m ~lba:0 ~data:(data_of 'a' 1);
  let child = Storage.Block.Media.fork m in
  let ov = Storage.Block.Media.overlay child in
  Storage.Block.Media.write ov ~lba:0 ~data:(data_of 'o' 1);
  Storage.Block.Media.write ov ~lba:9 ~data:(data_of 'O' 1);
  (* The overlay captured its writes; the fork underneath is untouched
     and still isolated from the original. *)
  Alcotest.(check string) "overlay write wins" (data_of 'o' 1)
    (Storage.Block.Media.read ov ~lba:0 ~sectors:1);
  Alcotest.(check string) "fork untouched" (data_of 'a' 1)
    (Storage.Block.Media.read child ~lba:0 ~sectors:1);
  Alcotest.(check string) "fork lba 9 untouched" (String.make sector '\000')
    (Storage.Block.Media.read child ~lba:9 ~sectors:1);
  (* Post-overlay writes to the fork show through where the overlay has
     not diverged — the overlay is a live view, exactly as over a
     plain image. *)
  Storage.Block.Media.write child ~lba:20 ~data:(data_of 'n' 1);
  Alcotest.(check string) "overlay reads through" (data_of 'n' 1)
    (Storage.Block.Media.read ov ~lba:20 ~sectors:1)

(* Model check of the COW page store: a family of images produced by
   random interleaved writes and forks must each read back exactly like
   an isolated sector-map reference copied at the same fork points —
   any page-sharing bug (a write leaking through a shared page, a fork
   missing state, an overwrite resurrecting stale bytes) shows up as a
   sector mismatch. Writes use 1-8 sectors at arbitrary alignment, so
   they split across the 8-sector COW pages in every way. *)
let media_fork_model_prop =
  let cap = 64 in
  prop "fork family matches sector-map reference" ~count:120
    QCheck2.Gen.(small_list (triple (int_bound 2) small_nat small_nat))
    (fun ops ->
      let images = ref [| Storage.Block.Media.create ~sector_size:sector ~capacity_sectors:cap |] in
      let refs = ref [| Hashtbl.create 64 |] in
      let ref_write tbl ~lba ~data =
        for s = 0 to (String.length data / sector) - 1 do
          Hashtbl.replace tbl (lba + s) (String.sub data (s * sector) sector)
        done
      in
      let ref_read tbl ~lba ~sectors =
        String.concat ""
          (List.init sectors (fun s ->
               Option.value
                 (Hashtbl.find_opt tbl (lba + s))
                 ~default:(String.make sector '\000')))
      in
      List.iter
        (fun (op, a, b) ->
          let n = Array.length !images in
          let i = a mod n in
          if op = 1 && n < 6 then begin
            images :=
              Array.append !images [| Storage.Block.Media.fork !images.(i) |];
            refs := Array.append !refs [| Hashtbl.copy !refs.(i) |]
          end
          else begin
            (* Write 1-8 sectors of a salted fill char at any alignment. *)
            let sectors = 1 + (b mod 8) in
            let lba = a mod (cap - sectors) in
            let data = data_of (Char.chr (Char.code 'a' + (b mod 26))) sectors in
            Storage.Block.Media.write !images.(i) ~lba ~data;
            ref_write !refs.(i) ~lba ~data
          end)
        ops;
      Array.iteri
        (fun i m ->
          let got = Storage.Block.Media.read m ~lba:0 ~sectors:cap in
          let want = ref_read !refs.(i) ~lba:0 ~sectors:cap in
          if not (String.equal got want) then
            QCheck2.Test.fail_reportf "image %d diverged from reference" i)
        !images;
      true)

(* -- Block wrapper ---------------------------------------------------- *)

let block_sectors_of_bytes () =
  run_in_sim (fun sim ->
      let dev = make_hdd sim in
      Alcotest.(check int) "exact" 2 (Storage.Block.sectors_of_bytes dev 1024);
      Alcotest.(check int) "round up" 3 (Storage.Block.sectors_of_bytes dev 1025))

let block_info () =
  run_in_sim (fun sim ->
      let dev = make_hdd sim in
      let info = Storage.Block.info dev in
      Alcotest.(check int) "sector size" sector info.Storage.Block.sector_size;
      Alcotest.(check int) "capacity" (1024 * 1000)
        info.Storage.Block.capacity_sectors)

(* -- HDD -------------------------------------------------------------- *)

let hdd_write_read_roundtrip () =
  run_in_sim (fun sim ->
      let dev = make_hdd sim in
      Storage.Block.write dev ~lba:100 (data_of 'q' 4);
      Alcotest.(check string) "roundtrip" (data_of 'q' 4)
        (Storage.Block.read dev ~lba:100 ~sectors:4))

let hdd_write_durable_on_completion () =
  run_in_sim (fun sim ->
      let dev = make_hdd sim in
      Storage.Block.write dev ~lba:0 (data_of 'd' 1);
      Alcotest.(check string) "on media immediately" (data_of 'd' 1)
        (Storage.Block.durable_read dev ~lba:0 ~sectors:1))

let rotation_ns = Time.span_to_ns (Storage.Hdd.rotation_period small_hdd)

let hdd_first_write_within_one_rotation () =
  run_in_sim (fun sim ->
      let dev = make_hdd sim in
      let before = Sim.now sim in
      Storage.Block.write dev ~lba:0 (data_of 'a' 1);
      let took = Time.span_to_ns (Time.diff (Sim.now sim) before) in
      Alcotest.(check bool) "bounded by a rotation plus overheads" true
        (took < rotation_ns + 1_000_000))

let hdd_gapped_small_writes_cost_a_rotation_each () =
  run_in_sim (fun sim ->
      let dev = make_hdd sim in
      (* Mimic a synchronous log: write, think briefly, write the next
         sector. The platter has moved on, so each write waits for it to
         come around again. *)
      Storage.Block.write dev ~lba:0 (data_of 'a' 1);
      Process.sleep (Time.us 100);
      let before = Sim.now sim in
      Storage.Block.write dev ~lba:1 (data_of 'b' 1);
      let took = Time.span_to_ns (Time.diff (Sim.now sim) before) in
      Alcotest.(check bool)
        (Printf.sprintf "near-full rotation (%dns of %dns)" took rotation_ns)
        true
        (took > rotation_ns * 8 / 10 && took < rotation_ns * 11 / 10))

let hdd_large_chunks_amortise_rotation () =
  (* Without command queuing, every write pays at most one positioning
     rotation; a 512 KiB chunk amortises it over ~a full track, so
     chunked sequential writes reach a large fraction of the media rate
     while sector-sized writes reach ~1/1000 of it. This asymmetry is
     the drain-path speed the trusted logger relies on. *)
  run_in_sim (fun sim ->
      let dev = make_hdd sim in
      let chunk = 1000 in
      let before = Sim.now sim in
      for i = 0 to 9 do
        Storage.Block.write dev ~lba:(i * chunk) (data_of 'c' chunk)
      done;
      let took = Time.span_to_float_sec (Time.diff (Sim.now sim) before) in
      let media_rate =
        float_of_int (small_hdd.Storage.Hdd.sectors_per_track * sector)
        /. Time.span_to_float_sec (Storage.Hdd.rotation_period small_hdd)
      in
      let achieved = float_of_int (10 * chunk * sector) /. took in
      Alcotest.(check bool)
        (Printf.sprintf "achieved %.0f of %.0f B/s" achieved media_rate)
        true
        (achieved > 0.4 *. media_rate))

let hdd_seek_costs_more_for_distance () =
  let time_to_write lba =
    run_in_sim (fun sim ->
        let dev = make_hdd sim in
        (* Park the head at track 0 first. *)
        Storage.Block.write dev ~lba:0 (data_of 'a' 1);
        let before = Sim.now sim in
        Storage.Block.write dev ~lba (data_of 'b' 1);
        Time.span_to_ns (Time.diff (Sim.now sim) before))
  in
  (* Remove rotation noise by comparing average-free seek components:
     same angular target, different track distance. *)
  let near = time_to_write (1 * small_hdd.Storage.Hdd.sectors_per_track) in
  let far = time_to_write (1000 * small_hdd.Storage.Hdd.sectors_per_track) in
  Alcotest.(check bool)
    (Printf.sprintf "far seek slower (%d vs %d)" far near)
    true (far > near)

let hdd_serialises_requests () =
  with_sim (fun sim ->
      let dev = make_hdd sim in
      let completions = ref [] in
      let writer tag lba () =
        Storage.Block.write dev ~lba (data_of 'x' 1);
        completions := (tag, Sim.now sim) :: !completions
      in
      ignore (Process.spawn sim (writer "a" 0));
      ignore (Process.spawn sim (writer "b" 500));
      fun () ->
        match List.rev !completions with
        | [ ("a", ta); ("b", tb) ] ->
            Alcotest.(check bool) "second strictly later" true Time.(ta < tb)
        | _ -> Alcotest.fail "expected two completions in order")

let hdd_stats_counters () =
  run_in_sim (fun sim ->
      let dev = make_hdd sim in
      Storage.Block.write dev ~lba:0 (data_of 'a' 4);
      ignore (Storage.Block.read dev ~lba:0 ~sectors:2);
      Storage.Block.flush dev;
      let stats = Storage.Block.stats dev in
      Alcotest.(check int) "writes" 1 (Storage.Disk_stats.writes stats);
      Alcotest.(check int) "sectors written" 4
        (Storage.Disk_stats.sectors_written stats);
      Alcotest.(check int) "reads" 1 (Storage.Disk_stats.reads stats);
      Alcotest.(check int) "sectors read" 2 (Storage.Disk_stats.sectors_read stats);
      Alcotest.(check int) "flushes" 1 (Storage.Disk_stats.flushes stats);
      Alcotest.(check bool) "busy time accumulates" true
        (Time.compare_span (Storage.Disk_stats.busy stats) Time.zero_span > 0))

let hdd_power_cut_stops_persisting () =
  with_sim (fun sim ->
      let dev = make_hdd sim in
      ignore
        (Process.spawn sim (fun () ->
             Storage.Block.write dev ~lba:0 (data_of 'a' 1);
             Storage.Block.power_cut dev;
             Storage.Block.write dev ~lba:10 (data_of 'b' 1)));
      fun () ->
        Alcotest.(check string) "pre-cut write persisted" (data_of 'a' 1)
          (Storage.Block.durable_read dev ~lba:0 ~sectors:1);
        Alcotest.(check string) "post-cut write lost"
          (String.make sector '\000')
          (Storage.Block.durable_read dev ~lba:10 ~sectors:1))

let hdd_power_cut_tears_in_flight () =
  let sim = Sim.create ~seed:5L () in
  let dev = make_hdd sim in
  ignore
    (Process.spawn sim (fun () -> Storage.Block.write dev ~lba:0 (data_of 'a' 64)));
  (* Cut power mid-transfer: the 64-sector transfer runs from ~30us to
     ~560us, so 300us lands inside it. *)
  Sim.schedule_after sim (Time.us 300) (fun () -> Storage.Block.power_cut dev);
  Sim.run sim;
  let read = Storage.Block.durable_read dev ~lba:0 ~sectors:64 in
  let persisted = ref 0 in
  for i = 0 to 63 do
    if String.sub read (i * sector) sector = data_of 'a' 1 then incr persisted
  done;
  Alcotest.(check bool)
    (Printf.sprintf "partial persistence (%d/64)" !persisted)
    true
    (!persisted < 64)

let hdd_config_with_rpm () =
  let faster = Storage.Hdd.config_with_rpm small_hdd 15000 in
  Alcotest.(check bool) "shorter period" true
    (Time.compare_span
       (Storage.Hdd.rotation_period faster)
       (Storage.Hdd.rotation_period small_hdd)
    < 0)

(* -- SSD --------------------------------------------------------------- *)

let ssd_roundtrip () =
  run_in_sim (fun sim ->
      let dev = make_ssd sim in
      Storage.Block.write dev ~lba:64 (data_of 's' 8);
      Alcotest.(check string) "roundtrip" (data_of 's' 8)
        (Storage.Block.read dev ~lba:64 ~sectors:8))

let ssd_write_latency_page_granular () =
  let time_for sectors =
    run_in_sim (fun sim ->
        let dev = make_ssd sim in
        let before = Sim.now sim in
        Storage.Block.write dev ~lba:0 (data_of 'x' sectors);
        Time.span_to_ns (Time.diff (Sim.now sim) before))
  in
  let one_page = time_for 8 in
  let expected =
    Time.span_to_ns Storage.Ssd.default.Storage.Ssd.program_latency
    + Time.span_to_ns Storage.Ssd.default.Storage.Ssd.command_overhead
  in
  Alcotest.(check int) "one page = program + overhead" expected one_page;
  Alcotest.(check bool) "sub-page rounds up to a page" true (time_for 1 = one_page)

let ssd_much_faster_than_hdd_for_sync_writes () =
  let ssd_time =
    run_in_sim (fun sim ->
        let dev = make_ssd sim in
        let before = Sim.now sim in
        Storage.Block.write dev ~lba:0 (data_of 'x' 1);
        Time.span_to_ns (Time.diff (Sim.now sim) before))
  in
  Alcotest.(check bool) "well under a disk rotation" true
    (ssd_time * 10 < rotation_ns)

let ssd_channels_parallelise () =
  (* Two concurrent one-page writes should overlap on different channels. *)
  let elapsed_for concurrency =
    let sim = Sim.create () in
    let dev = make_ssd sim in
    let finished = ref Time.zero in
    for i = 0 to concurrency - 1 do
      ignore
        (Process.spawn sim (fun () ->
             Storage.Block.write dev ~lba:(i * 8) (data_of 'x' 8);
             finished := Time.max !finished (Sim.now sim)))
    done;
    Sim.run sim;
    Time.to_ns !finished
  in
  let one = elapsed_for 1 in
  let four = elapsed_for 4 in
  Alcotest.(check bool)
    (Printf.sprintf "4 concurrent ≈ 1 (%d vs %d)" four one)
    true
    (four < 2 * one)

let ssd_power_cut () =
  with_sim (fun sim ->
      let dev = make_ssd sim in
      ignore
        (Process.spawn sim (fun () ->
             Storage.Block.write dev ~lba:0 (data_of 'a' 8);
             Storage.Block.power_cut dev;
             Storage.Block.write dev ~lba:80 (data_of 'b' 8)));
      fun () ->
        Alcotest.(check string) "pre-cut persisted" (data_of 'a' 8)
          (Storage.Block.durable_read dev ~lba:0 ~sectors:8);
        Alcotest.(check string) "post-cut lost" (String.make (8 * sector) '\000')
          (Storage.Block.durable_read dev ~lba:80 ~sectors:8))

(* -- Write cache -------------------------------------------------------- *)

let wrap_cache sim dev = Storage.Write_cache.wrap sim Storage.Write_cache.default dev

let cache_acks_fast () =
  run_in_sim (fun sim ->
      let dev = wrap_cache sim (make_hdd sim) in
      let before = Sim.now sim in
      Storage.Block.write dev ~lba:0 (data_of 'c' 1);
      let took = Time.span_to_ns (Time.diff (Sim.now sim) before) in
      Alcotest.(check bool)
        (Printf.sprintf "cache ack ≪ rotation (%dns)" took)
        true
        (took * 100 < rotation_ns))

let cache_data_not_durable_until_destaged () =
  let sim = Sim.create () in
  let dev = wrap_cache sim (make_hdd sim) in
  let acked_at = ref None in
  ignore
    (Process.spawn sim (fun () ->
         Storage.Block.write dev ~lba:0 (data_of 'c' 1);
         acked_at := Some (Sim.now sim);
         (* At the moment of the ack, the data is only in volatile RAM. *)
         Alcotest.(check string) "not yet on media" (String.make sector '\000')
           (Storage.Block.durable_read dev ~lba:0 ~sectors:1)));
  Sim.run sim;
  Alcotest.(check bool) "write acked" true (!acked_at <> None);
  (* After the queue drains, the destager has persisted it. *)
  Alcotest.(check string) "eventually durable" (data_of 'c' 1)
    (Storage.Block.durable_read dev ~lba:0 ~sectors:1)

let cache_flush_makes_durable () =
  run_in_sim (fun sim ->
      let dev = wrap_cache sim (make_hdd sim) in
      Storage.Block.write dev ~lba:0 (data_of 'f' 1);
      Storage.Block.flush dev;
      Alcotest.(check string) "durable after flush" (data_of 'f' 1)
        (Storage.Block.durable_read dev ~lba:0 ~sectors:1))

let cache_fua_bypasses () =
  run_in_sim (fun sim ->
      let dev = wrap_cache sim (make_hdd sim) in
      Storage.Block.write dev ~fua:true ~lba:0 (data_of 'u' 1);
      Alcotest.(check string) "durable at completion" (data_of 'u' 1)
        (Storage.Block.durable_read dev ~lba:0 ~sectors:1))

let cache_read_sees_cached_data () =
  run_in_sim (fun sim ->
      let dev = wrap_cache sim (make_hdd sim) in
      Storage.Block.write dev ~lba:3 (data_of 'r' 1);
      (* Immediately read back: must come from the overlay even though the
         media still has zeros. *)
      Alcotest.(check string) "read-through overlay" (data_of 'r' 1)
        (Storage.Block.read dev ~lba:3 ~sectors:1))

let cache_power_cut_drops_contents () =
  let sim = Sim.create () in
  let dev = wrap_cache sim (make_hdd sim) in
  ignore
    (Process.spawn sim (fun () ->
         Storage.Block.write dev ~lba:0 (data_of 'l' 1);
         (* Cut power at the instant of the ack: cached data vanishes. *)
         Storage.Block.power_cut dev));
  Sim.run sim;
  Alcotest.(check string) "lost" (String.make sector '\000')
    (Storage.Block.durable_read dev ~lba:0 ~sectors:1)

let cache_capacity_backpressure () =
  let tiny =
    { Storage.Write_cache.capacity_bytes = 4 * sector; admit_bandwidth = 1e9 }
  in
  run_in_sim (fun sim ->
      let dev = Storage.Write_cache.wrap sim tiny (make_hdd sim) in
      let before = Sim.now sim in
      (* 16 sectors through a 4-sector cache must wait for destaging —
         i.e. take at least one rotational positioning. *)
      for i = 0 to 15 do
        Storage.Block.write dev ~lba:i (data_of 'b' 1)
      done;
      let took = Time.span_to_ns (Time.diff (Sim.now sim) before) in
      Alcotest.(check bool)
        (Printf.sprintf "backpressure engaged (%dns)" took)
        true
        (took > 1_000_000))

let cache_destager_coalesces () =
  let sim = Sim.create () in
  let raw = make_hdd sim in
  let dev = wrap_cache sim raw in
  ignore
    (Process.spawn sim (fun () ->
         (* Many small overlapping-tail writes, like a WAL. *)
         for i = 0 to 63 do
           Storage.Block.write dev ~lba:i (data_of 'w' 2)
         done;
         Storage.Block.flush dev));
  Sim.run sim;
  let writes = Storage.Disk_stats.writes (Storage.Block.stats raw) in
  Alcotest.(check bool)
    (Printf.sprintf "fewer physical writes than cache entries (%d < 64)" writes)
    true (writes < 64);
  (* And the media contents equal in-order application of all writes. *)
  Alcotest.(check string) "contents correct" (data_of 'w' 65)
    (Storage.Block.durable_read dev ~lba:0 ~sectors:65)

let suites =
  [
    ( "storage.media",
      [
        case "unwritten sectors read as zeros" media_reads_zero;
        case "write/read roundtrip and extent" media_roundtrip;
        case "overwrite is sector granular" media_overwrite;
        case "fork isolates both directions" media_fork_isolation;
        case "fork of an overlay is rejected" media_fork_rejects_overlay;
        case "overlay over a fork stays live" media_overlay_over_fork;
        media_torn_prefix_prop;
        media_fork_model_prop;
      ] );
    ( "storage.block",
      [
        case "sectors_of_bytes" block_sectors_of_bytes;
        case "device info" block_info;
      ] );
    ( "storage.hdd",
      [
        case "write/read roundtrip" hdd_write_read_roundtrip;
        case "write durable on completion (no cache)" hdd_write_durable_on_completion;
        case "first write bounded by one rotation" hdd_first_write_within_one_rotation;
        case "gapped small writes cost a rotation each"
          hdd_gapped_small_writes_cost_a_rotation_each;
        case "large chunks amortise the rotation"
          hdd_large_chunks_amortise_rotation;
        case "longer seeks cost more" hdd_seek_costs_more_for_distance;
        case "single actuator serialises requests" hdd_serialises_requests;
        case "stats counters" hdd_stats_counters;
        case "power cut stops persisting" hdd_power_cut_stops_persisting;
        case "power cut tears in-flight write" hdd_power_cut_tears_in_flight;
        case "config_with_rpm scales the period" hdd_config_with_rpm;
      ] );
    ( "storage.ssd",
      [
        case "write/read roundtrip" ssd_roundtrip;
        case "page-granular write latency" ssd_write_latency_page_granular;
        case "sync writes far faster than disk" ssd_much_faster_than_hdd_for_sync_writes;
        case "channels service requests in parallel" ssd_channels_parallelise;
        case "power cut semantics" ssd_power_cut;
      ] );
    ( "storage.write_cache",
      [
        case "acks from cache RAM" cache_acks_fast;
        case "cached data not durable until destaged"
          cache_data_not_durable_until_destaged;
        case "flush forces durability" cache_flush_makes_durable;
        case "FUA bypasses the cache" cache_fua_bypasses;
        case "reads see cached data" cache_read_sees_cached_data;
        case "power cut drops cache contents" cache_power_cut_drops_contents;
        case "full cache applies backpressure" cache_capacity_backpressure;
        case "destager coalesces overlapping writes" cache_destager_coalesces;
      ] );
  ]

(* -- RAID-0 stripe (appended) -------------------------------------------------- *)

let make_stripe ?(members = 4) ?(chunk = 4) sim =
  let disks = Array.init members (fun _ -> make_ssd sim) in
  (Storage.Stripe.create sim ~chunk_sectors:chunk disks, disks)

let stripe_roundtrip_within_chunk () =
  run_in_sim (fun sim ->
      let vol, _ = make_stripe sim in
      Storage.Block.write vol ~lba:1 (data_of 's' 2);
      Alcotest.(check string) "roundtrip" (data_of 's' 2)
        (Storage.Block.read vol ~lba:1 ~sectors:2))

let stripe_roundtrip_across_members () =
  run_in_sim (fun sim ->
      let vol, _ = make_stripe sim in
      (* 16 sectors over 4-sector chunks spans all four members. *)
      let pattern =
        String.concat "" (List.init 16 (fun i -> String.make sector (Char.chr (65 + i))))
      in
      Storage.Block.write vol ~lba:2 pattern;
      Alcotest.(check string) "reassembled across members" pattern
        (Storage.Block.read vol ~lba:2 ~sectors:16))

let stripe_distributes_chunks () =
  run_in_sim (fun sim ->
      let vol, disks = make_stripe sim in
      Storage.Block.write vol ~lba:0 (data_of 'd' 16);
      Array.iter
        (fun disk ->
          Alcotest.(check int) "each member got one chunk" 4
            (Storage.Disk_stats.sectors_written (Storage.Block.stats disk)))
        disks)

let stripe_parallelises_large_writes () =
  (* 64 sectors = 8 flash pages: one SSD programs them in two channel
     rounds, four striped SSDs do one round each, concurrently. *)
  let timed f =
    run_in_sim (fun sim ->
        let before = Sim.now sim in
        f sim;
        Time.span_to_ns (Time.diff (Sim.now sim) before))
  in
  let striped =
    timed (fun sim ->
        let vol, _ = make_stripe ~chunk:16 sim in
        Storage.Block.write vol ~lba:0 (data_of 'p' 64))
  in
  let single =
    timed (fun sim ->
        let disk = make_ssd sim in
        Storage.Block.write disk ~lba:0 (data_of 'p' 64))
  in
  Alcotest.(check bool)
    (Printf.sprintf "striped faster (%dns < %dns)" striped single)
    true (striped < single)

let stripe_durable_read_and_extent () =
  run_in_sim (fun sim ->
      let vol, _ = make_stripe sim in
      Storage.Block.write vol ~lba:5 (data_of 'e' 10);
      Alcotest.(check string) "durable view reassembles" (data_of 'e' 10)
        (Storage.Block.durable_read vol ~lba:5 ~sectors:10);
      Alcotest.(check bool) "extent covers the write" true
        (Storage.Block.durable_extent vol >= 15))

let stripe_power_cut_propagates () =
  with_sim (fun sim ->
      let vol, disks = make_stripe sim in
      ignore
        (Process.spawn sim (fun () ->
             Storage.Block.write vol ~lba:0 (data_of 'a' 4);
             Storage.Block.power_cut vol;
             Storage.Block.write vol ~lba:100 (data_of 'b' 4)));
      fun () ->
        Alcotest.(check string) "pre-cut data persisted" (data_of 'a' 4)
          (Storage.Block.durable_read vol ~lba:0 ~sectors:4);
        Alcotest.(check string) "post-cut write lost"
          (String.make (4 * sector) '\000')
          (Storage.Block.durable_read vol ~lba:100 ~sectors:4);
        ignore disks)

let stripe_suite =
  ( "storage.stripe",
    [
      case "roundtrip within a chunk" stripe_roundtrip_within_chunk;
      case "roundtrip across members" stripe_roundtrip_across_members;
      case "chunks distribute round-robin" stripe_distributes_chunks;
      case "large writes parallelise" stripe_parallelises_large_writes;
      case "durable read and extent" stripe_durable_read_and_extent;
      case "power cut reaches every member" stripe_power_cut_propagates;
    ] )

let suites = suites @ [ stripe_suite ]
