(** The trusted log buffer: a bounded FIFO of block writes.

    The buffer holds the (lba, data) writes the guest has issued to its
    virtual log disk, in issue order, with byte-accurate capacity
    accounting. {!pop_coalesced} merges runs of overlapping or adjacent
    writes into one large physical write — successive WAL forces rewrite
    the trailing partial sector, and coalescing both resolves the overlap
    (later data wins) and turns the drain into streaming-sized I/O. *)

type entry = { lba : int; data : string }

type t

val create : sector_size:int -> capacity_bytes:int -> t
(** An empty buffer; [capacity_bytes] bounds {!bytes_used}, and entries
    must be whole sectors of [sector_size]. *)

val capacity_bytes : t -> int
val bytes_used : t -> int

val length : t -> int
(** Queued entries. *)

val is_empty : t -> bool

val fits : t -> int -> bool
(** [fits t n] — would an [n]-byte entry be accepted now? *)

val try_push : ?stamp:int -> t -> lba:int -> data:string -> bool
(** False when the entry does not fit; the caller applies
    backpressure. [stamp] (default 0) is an opaque caller-supplied
    mark stored alongside the entry — the logger passes the push
    instant in nanoseconds so the drain can report how long data sat
    buffered ({!head_stamp}). *)

val head_stamp : t -> int
(** The stamp of the oldest entry; [0] when empty. Read it before
    {!pop}/{!pop_coalesced} to age the batch about to drain. *)

val pop : t -> entry option

val pop_coalesced : t -> max_bytes:int -> entry option
(** Pop the head and merge queued entries that start within or
    immediately after the accumulated range, keeping the merged size
    within [max_bytes]. Later entries overwrite overlapping sectors.
    Entries outside the range — another log region's writes, when the
    WAL runs parallel streams — are skipped over and stay queued in
    order, so one region's run coalesces even when regions interleave
    in the queue; an entry overlapping a skipped one is never taken,
    keeping every sector's writes in push order. *)

val iter : t -> (entry -> unit) -> unit
(** Visit the queued entries oldest-first without consuming them. The
    crash-surface reconstruction snapshots the buffer contents at a
    boundary with this. *)

val copy : t -> t
(** An independent deep copy: subsequent pushes and pops on either
    buffer leave the other untouched. O(slots); payload strings are
    immutable and stay shared. The fork-based crash sweep snapshots
    the logger's ring at every chunk boundary with this. *)

val pushed_bytes : t -> int
(** Total bytes ever accepted. *)

val popped_bytes : t -> int
(** Total bytes ever drained. *)

val max_bytes_used : t -> int
(** High-water mark of {!bytes_used} over the buffer's lifetime. *)

val pushes : t -> int
(** Entries ever accepted; with {!pops} this gives the drain's
    coalescing factor at the entry granularity. *)

val pops : t -> int
(** Batches ever popped (coalesced batches count once). *)
