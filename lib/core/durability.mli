(** The durability guarantee, stated checkably.

    A configuration is durable when every transaction whose commit was
    acknowledged to a client is reflected in the state recovered from
    post-crash media. The harness records the acknowledged set and the
    expected final store on the client side; this module compares them
    with what {!Dbms.Recovery} reconstructed. *)

type report = {
  committed : int;  (** transactions acknowledged to clients *)
  recovered : int;  (** of those, present in the recovered state *)
  lost : int list;  (** acknowledged but missing — must be empty when the
                        durability guarantee holds *)
  extra : int list;
      (** recovered but never acknowledged (commit record reached media,
          ack did not reach the client) — always permitted *)
}

val compare_txids : committed:int list -> recovered:int list -> report
(** Set comparison of acknowledged against recovered transaction ids;
    neither list need be sorted. *)

val compare_sorted : committed:int array -> n:int -> recovered:int list -> report
(** [compare_txids] for an acknowledged set kept as the first [n]
    elements of a strictly ascending array and a recovered list already
    sorted ascending and duplicate-free ({!Dbms.Recovery} reports it
    so): a single merge walk instead of two set constructions. *)

val holds : report -> bool
(** No acknowledged transaction was lost. *)

type store_diff = { key : int; expected : string option; actual : string option }

val diff_stores :
  expected:(int, string) Hashtbl.t -> actual:(int, string) Hashtbl.t -> store_diff list
(** Keys whose recovered value differs from the expected value; empty
    means state-exact recovery. *)

val logger_conservation : Trusted_logger.t -> bool
(** After {!Trusted_logger.quiesce}: no acknowledged data remains in the
    buffer (everything reached the device, modulo coalescing of
    overlapping sector rewrites). *)

val pp_report : Format.formatter -> report -> unit
(** One-line summary, e.g. ["committed=12 recovered=12 lost=0 extra=1"]. *)
