(** Flash SSD model.

    Service time has no positional component: a write costs the controller
    overhead plus one page-program round per [ceil (pages / channels)]
    stripe. Up to [channels] requests are serviced concurrently. This is a
    deliberate simplification of a real FTL — what the experiments need
    from it is (a) synchronous-write latency two orders of magnitude below
    a disk rotation and (b) high streaming bandwidth, which together
    reproduce the paper's observation that RapiLog's gains shrink on
    SSDs. *)

type config = {
  page_sectors : int;  (** flash page size in sectors *)
  read_latency : Desim.Time.span;  (** per-page read *)
  program_latency : Desim.Time.span;  (** per-page program *)
  channels : int;
  command_overhead : Desim.Time.span;
  capacity_sectors : int;
  sector_size : int;
}

val default : config
(** 4 KiB pages, 300 us program, 60 us read, 4 channels: a SATA-era
    enterprise SSD. *)

val create : Desim.Sim.t -> ?model:string -> config -> Block.t
