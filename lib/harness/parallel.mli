(** Multicore fan-out for independent scenario evaluations.

    Every reconstructed experiment is a sweep of deterministic
    simulations that share nothing — each task builds its own
    {!Desim.Sim.t} and RNG from its config seed — so they parallelise
    perfectly across OCaml 5 domains. Results come back in submission
    order and are bit-identical to a serial run; only wall-clock time
    changes. *)

val env_var : string
(** ["RAPILOG_JOBS"] — overrides the worker count when set to a
    positive integer. *)

val default_jobs : unit -> int
(** The [RAPILOG_JOBS] override when set and valid, otherwise
    [Domain.recommended_domain_count ()]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] evaluates [f] over [items] on [jobs] domains
    (default {!default_jobs}) and returns the results in input order.
    [jobs = 1] (or a singleton input) degenerates to [List.map] on the
    calling domain — no domains are spawned. If any task raises, the
    remaining tasks still run and the first failure (in input order) is
    re-raised with its original backtrace. *)

val run : ?jobs:int -> (unit -> 'a) list -> 'a list
(** [run thunks] is [map (fun f -> f ()) thunks]. *)
