(* The benchmark harness: regenerates every table and figure of the
   reconstructed RapiLog evaluation (see DESIGN.md for the experiment
   index), plus Bechamel microbenchmarks of the core operations.

   Usage:
     dune exec bench/main.exe                 run everything
     dune exec bench/main.exe -- --quick      smaller sweeps / fewer trials
     dune exec bench/main.exe -- --list       list experiment ids
     dune exec bench/main.exe -- --only ID    run one experiment (repeatable) *)

let experiments =
  Bench_throughput.experiments @ Bench_latency.experiments
  @ Bench_virt_overhead.experiments @ Bench_failures.experiments
  @ Bench_buffer_size.experiments @ Bench_disk_speed.experiments
  @ Bench_group_commit.experiments @ Bench_recovery.experiments
  @ Bench_residual_energy.experiments @ Bench_single_disk.experiments
  @ Bench_ycsb.experiments @ Bench_consolidation.experiments
  @ Bench_restart.experiments @ Bench_commit_delay.experiments
  @ Bench_metrics.experiments @ Bench_replication.experiments
  @ Bench_commit_path.experiments @ Bench_sharded.experiments
  @ [ Bench_scenarios.experiment; Bench_micro.experiment ]

let usage () =
  print_endline "usage: main.exe [--quick] [--list] [--metrics] [--only ID]...";
  exit 2

let () =
  let quick = ref false in
  let only = ref [] in
  let list_only = ref false in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--list" :: rest ->
        list_only := true;
        parse rest
    | "--only" :: id :: rest ->
        only := id :: !only;
        parse rest
    | "--metrics" :: rest ->
        (* Shorthand for the per-stage latency breakdown. *)
        only := "metrics-breakdown" :: !only;
        parse rest
    | arg :: _ ->
        Printf.eprintf "unknown argument: %s\n" arg;
        usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !list_only then begin
    List.iter
      (fun e ->
        Printf.printf "%-22s %s\n" e.Bench_support.id e.Bench_support.description)
      experiments;
    exit 0
  end;
  let selected =
    match !only with
    | [] -> experiments
    | ids ->
        List.iter
          (fun id ->
            if not (List.exists (fun e -> e.Bench_support.id = id) experiments)
            then begin
              (* A prefix of a real id (say "fig12" for
                 "fig12-replication") is still an error — ids are exact —
                 but earn a suggestion instead of a bare rejection. *)
              (match
                 List.filter
                   (fun e ->
                     String.length id > 0
                     && String.length e.Bench_support.id >= String.length id
                     && String.sub e.Bench_support.id 0 (String.length id) = id)
                   experiments
               with
              | [] ->
                  Printf.eprintf "unknown experiment id: %s (try --list)\n" id
              | matches ->
                  Printf.eprintf
                    "unknown experiment id: %s (did you mean %s? ids are \
                     exact — try --list)\n"
                    id
                    (String.concat " or "
                       (List.map (fun e -> e.Bench_support.id) matches)));
              exit 2
            end)
          ids;
        List.filter (fun e -> List.mem e.Bench_support.id ids) experiments
  in
  Printf.printf "RapiLog reproduction benchmark harness (%s mode, %d experiments)\n"
    (if !quick then "quick" else "full")
    (List.length selected);
  let started = Unix.gettimeofday () in
  List.iter
    (fun e ->
      let t0 = Unix.gettimeofday () in
      e.Bench_support.run ~quick:!quick;
      Printf.printf "  [%s done in %.1fs]\n%!" e.Bench_support.id
        (Unix.gettimeofday () -. t0))
    selected;
  Printf.printf "\nall experiments done in %.1fs\n" (Unix.gettimeofday () -. started)
