(* tab1-virt-overhead: what running on the seL4-based VMM costs. The
   paper's claim is that RapiLog never degrades performance *beyond the
   virtualisation overhead*, so we measure that overhead in isolation:
   CPU-bound transaction rate, sequential log-device bandwidth through
   the paravirtual path, the raw IPC round-trip, and an end-to-end
   TPC-C run on an SSD (where the disk does not mask CPU costs). *)

open Desim
open Harness
open Bench_support

let cpu_bound_rate vmm_config =
  let sim = Sim.create ~seed:1L () in
  let vmm = Hypervisor.Vmm.create sim vmm_config in
  let count = ref 0 in
  for _ = 1 to vmm_config.Hypervisor.Vmm.cores do
    ignore
      (Hypervisor.Vmm.spawn_guest vmm (fun () ->
           while true do
             Hypervisor.Vmm.exec vmm (Time.us 250);
             incr count
           done))
  done;
  Sim.run ~until:(Time.add Time.zero (Time.sec 1)) sim;
  float_of_int !count

let seq_write_bandwidth ~virtualised =
  let sim = Sim.create ~seed:1L () in
  let vmm =
    Hypervisor.Vmm.create sim
      (if virtualised then Hypervisor.Vmm.default_sel4 else Hypervisor.Vmm.native)
  in
  let raw = Storage.Hdd.create sim Storage.Hdd.default_7200rpm in
  let dev =
    if virtualised then
      Hypervisor.Vmm.attach_virtio_disk vmm (Hypervisor.Virtio_blk.backend_of_block raw)
    else raw
  in
  let chunk_sectors = 1024 in
  let chunk = String.make (chunk_sectors * 512) 'b' in
  let bytes = ref 0 in
  ignore
    (Hypervisor.Vmm.spawn_guest vmm (fun () ->
         let lba = ref 0 in
         while true do
           Storage.Block.write dev ~lba:!lba chunk;
           lba := !lba + chunk_sectors;
           bytes := !bytes + String.length chunk
         done));
  Sim.run ~until:(Time.add Time.zero (Time.sec 1)) sim;
  float_of_int !bytes

let tpcc_ssd_throughput ~quick mode =
  let config =
    {
      (base_config ~quick) with
      Scenario.mode;
      clients = 16;
      device = Scenario.Flash Storage.Ssd.default;
    }
  in
  (steady config).Experiment.throughput

let tab1 =
  {
    id = "tab1-virt-overhead";
    title = "Tab 1: virtualisation overhead in isolation";
    description =
      "isolates hypervisor/IPC overhead with durability off in both guests";
    run =
      (fun ~quick ->
        Report.section "Tab 1: virtualisation overhead (native vs seL4 VMM)";
        let native_cpu = cpu_bound_rate Hypervisor.Vmm.native in
        let virt_cpu = cpu_bound_rate Hypervisor.Vmm.default_sel4 in
        let native_bw = seq_write_bandwidth ~virtualised:false in
        let virt_bw = seq_write_bandwidth ~virtualised:true in
        let native_tpcc = tpcc_ssd_throughput ~quick Scenario.Native_sync in
        let virt_tpcc = tpcc_ssd_throughput ~quick Scenario.Virt_sync in
        let ratio a b = if a = 0. then "-" else Printf.sprintf "%.1f%%" (100. *. (1. -. (b /. a))) in
        Report.table
          ~columns:[ "metric"; "native"; "virtualised"; "overhead" ]
          ~rows:
            [
              [
                "CPU-bound txns/s (250us each, 4 cores)";
                Report.float_cell native_cpu;
                Report.float_cell virt_cpu;
                ratio native_cpu virt_cpu;
              ];
              [
                "sequential log write MB/s (512KiB chunks)";
                Report.float_cell (native_bw /. 1e6);
                Report.float_cell (virt_bw /. 1e6);
                ratio native_bw virt_bw;
              ];
              [
                "IPC round trip (us)";
                "0";
                Report.float_cell
                  (Time.span_to_float_us
                     (Hypervisor.Ipc.round_trip Hypervisor.Ipc.default_sel4));
                "-";
              ];
              [
                "TPC-C-lite txn/s, SSD, 16 clients";
                Report.float_cell native_tpcc;
                Report.float_cell virt_tpcc;
                ratio native_tpcc virt_tpcc;
              ];
            ];
        Report.note
          "shape target: single-digit-percent CPU overhead; I/O-bound bandwidth essentially unchanged");
  }

let experiments = [ tab1 ]
