(* Pull the plug on every configuration and watch who keeps their
   promises. Safe configurations must lose nothing; the write-cache and
   async-commit shortcuts are expected to lose acknowledged commits.

   Run with: dune exec examples/power_failure.exe *)

open Harness

let trial mode seed =
  let config =
    {
      Scenario.default with
      Scenario.mode;
      clients = 8;
      seed;
      duration = Desim.Time.sec 1;
    }
  in
  Experiment.run_failure config ~kind:Experiment.Power_cut
    ~after:(Desim.Time.ms 600)

let () =
  print_endline "Power-cut durability, 3 trials per configuration";
  print_endline "(hold-up window: 300 ms; trusted logger drains within it)\n";
  Report.table
    ~columns:[ "config"; "seed"; "acked"; "lost"; "state-exact"; "verdict" ]
    ~rows:
      (List.concat_map
         (fun mode ->
           List.map
             (fun seed ->
               let r = trial mode seed in
               let lost =
                 List.length r.Experiment.audit.Audit.durability.Rapilog.Durability.lost
               in
               [
                 Scenario.mode_name mode;
                 Int64.to_string seed;
                 string_of_int r.Experiment.acked;
                 string_of_int lost;
                 string_of_bool r.Experiment.audit.Audit.state_exact;
                 (if Experiment.durability_ok r then
                    if lost = 0 then "safe" else "lossy (as designed)"
                  else "GUARANTEE VIOLATED");
               ])
             [ 7L; 8L; 9L ])
         Scenario.all_modes);
  print_newline ();
  print_endline
    "'lossy (as designed)' marks the unsafe baselines doing what their";
  print_endline "configuration warned about; any 'GUARANTEE VIOLATED' is a bug."
