(* Quickstart: bring up a complete RapiLog system, run a short TPC-C-lite
   burst, cut the power mid-run, and verify that recovery loses nothing.

   Run with: dune exec examples/quickstart.exe *)

open Harness

let () =
  let config =
    {
      Scenario.default with
      Scenario.clients = 4;
      duration = Desim.Time.sec 1;
      warmup = Desim.Time.ms 200;
    }
  in
  print_endline "== RapiLog quickstart ==";
  Printf.printf "mode        : %s\n" (Scenario.mode_name config.Scenario.mode);
  Printf.printf "device      : %s\n" (Scenario.device_name config.Scenario.device);
  Printf.printf "engine      : %s\n%!" config.Scenario.profile.Dbms.Engine_profile.name;

  (* Steady state: how fast does it commit? *)
  let steady = Experiment.run_steady config in
  Printf.printf "\n-- steady state (1 simulated second) --\n";
  Printf.printf "throughput  : %.0f txn/s\n" steady.Experiment.throughput;
  Printf.printf "latency p50 : %.0f us\n" steady.Experiment.latency_p50_us;
  Printf.printf "latency p99 : %.0f us\n%!" steady.Experiment.latency_p99_us;
  (match steady.Experiment.logger_stats with
  | Some stats ->
      Printf.printf "log writes acked from trusted buffer : %d\n"
        stats.Experiment.acked_writes;
      Printf.printf "physical drain writes (coalesced)    : %d\n%!"
        stats.Experiment.drain_writes
  | None -> ());

  (* Pull the plug. *)
  let failure =
    Experiment.run_failure config ~kind:Experiment.Power_cut
      ~after:(Desim.Time.ms 800)
  in
  Printf.printf "\n-- power cut after 800 ms of load --\n";
  Printf.printf "transactions acknowledged before the cut : %d\n"
    failure.Experiment.acked;
  Printf.printf "buffered in trusted logger at the cut    : %s bytes\n"
    (match failure.Experiment.buffered_at_cut with
    | Some b -> string_of_int b
    | None -> "n/a");
  Printf.printf "recovered committed transactions         : %d\n"
    failure.Experiment.audit.Audit.durability.Rapilog.Durability.recovered;
  Printf.printf "acknowledged transactions lost           : %d\n"
    (List.length failure.Experiment.audit.Audit.durability.Rapilog.Durability.lost);
  Printf.printf "recovered state matches expectation      : %b\n%!"
    failure.Experiment.audit.Audit.state_exact;
  if Experiment.durability_ok failure then
    print_endline "\nRapiLog durability guarantee: HELD"
  else begin
    print_endline "\nRapiLog durability guarantee: VIOLATED";
    exit 1
  end
