open Desim

type kind = Os_crash | Power_cut | Power_cut_tight | Machine_loss

let kind_name = function
  | Os_crash -> "os-crash"
  | Power_cut -> "power-cut"
  | Power_cut_tight -> "power-cut-tight"
  | Machine_loss -> "machine-loss"

let all_kinds = [ Os_crash; Power_cut; Power_cut_tight; Machine_loss ]

(* The single-machine kinds every local mode is sweepable under.
   [Machine_loss] is opt-in: the whole primary vanishing is exactly the
   failure local RapiLog does NOT promise to survive (only the
   replicated scenario does), so a default sweep would flag expected
   losses as breaks. *)
let default_kinds = [ Os_crash; Power_cut; Power_cut_tight ]

let kind_of_name name =
  List.find_opt (fun kind -> String.equal (kind_name kind) name) all_kinds

type config = {
  scenario : Scenario.config;
  window_start : Time.span;
  window_length : Time.span;
  stride : int;
  kinds : kind list;
  tight_window : Time.span;
  tight_buffer_bytes : int;
  media_digests : bool;
}

let default scenario =
  {
    scenario;
    window_start = Time.ms 5;
    window_length = Time.ms 40;
    stride = 1;
    kinds = default_kinds;
    tight_window = Time.ms 20;
    tight_buffer_bytes = 128 * 1024;
    media_digests = false;
  }

(* The tight-budget kind changes the machine under test: a smaller PSU
   hold-up window and a trusted buffer shrunk to fit it. Everything that
   runs before the cut is affected (a smaller buffer backpressures
   earlier), so each kind enumerates its own effective configuration —
   boundary indices are only meaningful against the world they were
   counted in. *)
let effective_scenario config = function
  | Os_crash | Power_cut | Machine_loss -> config.scenario
  | Power_cut_tight ->
      {
        config.scenario with
        Scenario.psu = Power.Psu.of_window config.tight_window;
        logger =
          {
            config.scenario.Scenario.logger with
            Rapilog.Trusted_logger.buffer_bytes = config.tight_buffer_bytes;
          };
      }

type enumeration = {
  e_kind : kind;
  e_window_start_ns : int;
  e_window_end_ns : int;
  e_boundaries : int;
  e_candidates : (int * int) array;
}

let enumerate config kind =
  if config.stride < 1 then invalid_arg "Crash_surface: stride must be >= 1";
  let built = Scenario.build (effective_scenario config kind) in
  let sim = built.Scenario.sim in
  let track = Driver.make_tracking () in
  (* The crash replays run with the invariants monitor attached, and the
     monitor schedules its own poll events — so the enumeration replay
     must carry it too, or event indices would name different instants
     in the two replays. The monitor is simply abandoned with the rest
     of the simulation when enumeration stops. *)
  let (_ : Rapilog.Invariants.t list) =
    List.map (Rapilog.Invariants.attach sim) (Scenario.all_loggers built)
  in
  let window = ref None in
  Driver.spawn_loader built track ~after_load:(fun () ->
      let ws = Time.add (Sim.now sim) config.window_start in
      window := Some (ws, Time.add ws config.window_length);
      Driver.spawn_clients built track);
  let boundaries = ref 0 in
  let candidates = ref [] in
  let stop = ref false in
  while (not !stop) && Sim.step sim do
    match !window with
    | None -> ()
    | Some (ws, we) ->
        let now = Sim.now sim in
        if Time.(we <= now) then stop := true
        else if Time.(ws <= now) then begin
          (* The boundary after the [n]-th executed event: the clock
             stands at that event's time and the next event has not run.
             Boundaries between same-instant events count too — that is
             what makes the sweep finer than time-based sampling. *)
          if !boundaries mod config.stride = 0 then
            candidates :=
              (Sim.events_executed sim, Time.to_ns now) :: !candidates;
          incr boundaries
        end
  done;
  let ws, we =
    match !window with
    | Some (ws, we) -> (Time.to_ns ws, Time.to_ns we)
    | None -> failwith "Crash_surface.enumerate: load phase never completed"
  in
  {
    e_kind = kind;
    e_window_start_ns = ws;
    e_window_end_ns = we;
    e_boundaries = !boundaries;
    e_candidates = Array.of_list (List.rev !candidates);
  }

type verdict = {
  v_kind : kind;
  v_event_index : int;
  v_at_ns : int;
  v_acked : int;
  v_lost : int;
  v_extra : int;
  v_state_exact : bool;
  v_diff_count : int;
  v_invariant_violations : int;
  v_buffered_at_cut : int;
  v_media_crc : int;
  v_stats : Dbms.Recovery.replay_stats;
  v_tenant_acked : int;
  v_tenant_lost : int;
  v_tenant_extra : int;
  v_tenant_breaks : int;
  v_contract_ok : bool;
}

(* A deterministic digest of the durable media a recovery pass would
   read, computed through the same {!Storage.Block} durable interface on
   both the full-replay and the journal-reconstruction paths — so a
   single integer comparison certifies the two produced bit-identical
   post-crash images. *)
let media_digest ~log ~data =
  let fold_device acc device =
    let extent = Storage.Block.durable_extent device in
    let chunk = 256 in
    let rec go acc lba =
      if lba >= extent then acc
      else begin
        let sectors = min chunk (extent - lba) in
        let data = Storage.Block.durable_read device ~lba ~sectors in
        let crc = Int32.to_int (Dbms.Crc32.digest_string data) land 0xFFFFFFFF in
        go (((acc * 16777619) + crc) land max_int) (lba + sectors)
      end
    in
    let acc = ((acc * 16777619) + extent) land max_int in
    if extent = 0 then acc else go acc 0
  in
  fold_device (fold_device 17 log) data

let run_point config kind ~event_index ~at_ns =
  let built = Scenario.build (effective_scenario config kind) in
  let sim = built.Scenario.sim in
  let track = Driver.make_tracking () in
  (* The runtime monitors ride along exactly as in the sampled failure
     experiments — one per trusted logger on the machine (several in the
     sharded mode); they must be stopped once the failure settles or
     their self-rescheduling would keep the event loop alive forever. *)
  let monitors =
    List.map (Rapilog.Invariants.attach sim) (Scenario.all_loggers built)
  in
  let stop_monitor () = List.iter Rapilog.Invariants.stop monitors in
  Driver.spawn_loader built track ~after_load:(fun () ->
      Driver.spawn_clients built track);
  if not (Sim.run_to_event sim event_index) then
    failwith
      (Printf.sprintf "Crash_surface: event boundary %d beyond simulation end"
         event_index);
  (* Replay-determinism cross-check: the boundary enumerated in one
     replay must fall at the identical instant in this one. *)
  let now_ns = Time.to_ns (Sim.now sim) in
  if now_ns <> at_ns then
    failwith
      (Printf.sprintf
         "Crash_surface: replay diverged at event %d: enumerated %d ns, \
          replayed %d ns"
         event_index at_ns now_ns);
  let buffered_at_cut =
    match Scenario.all_loggers built with
    | [] -> -1
    | loggers ->
        List.fold_left
          (fun acc logger -> acc + Rapilog.Trusted_logger.buffered_bytes logger)
          0 loggers
  in
  (match kind with
  | Os_crash -> (
      Hypervisor.Vmm.crash_guest built.Scenario.vmm;
      (* The loggers outlive the guest: wait for every drain. *)
      match Scenario.all_loggers built with
      | [] -> stop_monitor ()
      | loggers ->
          ignore
            (Process.spawn sim ~name:"quiesce" (fun () ->
                 List.iter Rapilog.Trusted_logger.quiesce loggers;
                 stop_monitor ())))
  | Machine_loss ->
      (* The primary vanishes this instant: guest, trusted buffer, PSU
         residual energy and all. The guest halts first (nothing executes
         on a dead machine), then the power domain loses every device
         with a zero window — in-flight writes tear right here, before
         any same-instant completion can fire. Survivors: durable media,
         and — in the replicated scenario — the replica machine plus
         whatever was already on the wire to it. *)
      Hypervisor.Vmm.crash_guest built.Scenario.vmm;
      Power.Power_domain.lose built.Scenario.power;
      (* A dead machine is also a dead network endpoint: sever every
         quorum link so in-flight appends and acks die on the wire
         instead of delivering post-mortem. Without this the Quorum 1
         control cell could never lose — entries still in flight to the
         slow replicas would land after the "loss". *)
      Option.iter Net.Quorum.primary_lost built.Scenario.quorum;
      Sim.schedule_at sim (Time.add (Sim.now sim) (Time.ms 2)) stop_monitor
  | Power_cut | Power_cut_tight ->
      Power.Power_domain.cut built.Scenario.power;
      let dead =
        match Power.Power_domain.dead_at built.Scenario.power with
        | Some dead -> dead
        | None -> assert false
      in
      (match built.Scenario.logger with
      | Some _ ->
          (* With the trusted logger deployed, the power-fail interrupt
             halts the guest at the instant of the cut — the paper's
             discipline: from the NMI on, only the trusted drain runs.
             Nothing is acknowledged at or after the cut. *)
          Hypervisor.Vmm.crash_guest built.Scenario.vmm
      | None ->
          (* Unprotected baselines get no power-fail warning: the machine
             keeps executing until just before hold-up expiry. *)
          Sim.schedule_at sim
            (Time.add dead (Time.ns (-1000)))
            (fun () -> Hypervisor.Vmm.crash_guest built.Scenario.vmm));
      Sim.schedule_at sim (Time.add dead (Time.ms 2)) stop_monitor);
  Sim.run sim;
  let recovery =
    Dbms.Recovery.run
      ~log_device:(Scenario.recovery_log_device built)
      ~data_device:built.Scenario.data_physical
      ~wal_config:built.Scenario.wal_config
      ~pool_config:built.Scenario.config.Scenario.pool
  in
  let audit = Audit.check ~model:track.Driver.model ~acked:track.Driver.acked ~recovery in
  let invariant_violations =
    List.fold_left
      (fun acc monitor -> acc + List.length (Rapilog.Invariants.violations monitor))
      0 monitors
  in
  (* The sharded tier gets its own audit: every tenant's acknowledged
     sequence numbers re-read from the shard devices, exactly as the
     DBMS audit re-reads the log device. A single lost tenant entry is
     a contract break on par with a lost commit. *)
  let tenant_acked, tenant_lost, tenant_extra, tenant_breaks =
    match built.Scenario.shard with
    | Some tier ->
        let t = Shard.Recover.audit tier in
        ( t.Shard.Recover.a_acked,
          t.Shard.Recover.a_lost,
          t.Shard.Recover.a_extra,
          t.Shard.Recover.a_breaks )
    | None -> (0, 0, 0, 0)
  in
  let lost = List.length audit.Audit.durability.Rapilog.Durability.lost in
  {
    v_kind = kind;
    v_event_index = event_index;
    v_at_ns = at_ns;
    v_acked = List.length track.Driver.acked;
    v_lost = lost;
    v_extra = List.length audit.Audit.durability.Rapilog.Durability.extra;
    v_state_exact = audit.Audit.state_exact;
    v_diff_count = audit.Audit.diff_count;
    v_invariant_violations = invariant_violations;
    v_buffered_at_cut = buffered_at_cut;
    v_media_crc =
      (if config.media_digests then
         media_digest ~log:built.Scenario.log_physical
           ~data:built.Scenario.data_physical
       else -1);
    v_stats = Dbms.Recovery.stats recovery;
    v_tenant_acked = tenant_acked;
    v_tenant_lost = tenant_lost;
    v_tenant_extra = tenant_extra;
    v_tenant_breaks = tenant_breaks;
    v_contract_ok =
      Rapilog.Durability.holds audit.Audit.durability
      && audit.Audit.state_exact
      && invariant_violations = 0
      && tenant_breaks = 0;
  }

type kind_summary = {
  k_kind : kind;
  k_boundaries : int;
  k_explored : int;
  k_contract_breaks : int;
  k_lost : int;
}

type result = {
  r_mode : Scenario.mode;
  r_stride : int;
  r_kinds : kind_summary list;
  r_total_boundaries : int;
  r_explored : int;
  r_contract_breaks : int;
  r_lost_total : int;
  r_verdicts : verdict list;
}

let assemble config ~boundaries_by_kind verdicts =
  let summary_of (kind, boundaries) =
    let of_kind = List.filter (fun v -> v.v_kind = kind) verdicts in
    {
      k_kind = kind;
      k_boundaries = boundaries;
      k_explored = List.length of_kind;
      k_contract_breaks =
        List.length (List.filter (fun v -> not v.v_contract_ok) of_kind);
      k_lost = List.fold_left (fun acc v -> acc + v.v_lost) 0 of_kind;
    }
  in
  let kinds = List.map summary_of boundaries_by_kind in
  {
    r_mode = config.scenario.Scenario.mode;
    r_stride = config.stride;
    r_kinds = kinds;
    r_total_boundaries =
      List.fold_left (fun acc k -> acc + k.k_boundaries) 0 kinds;
    r_explored = List.fold_left (fun acc k -> acc + k.k_explored) 0 kinds;
    r_contract_breaks =
      List.fold_left (fun acc k -> acc + k.k_contract_breaks) 0 kinds;
    r_lost_total = List.fold_left (fun acc k -> acc + k.k_lost) 0 kinds;
    r_verdicts = verdicts;
  }

let sweep ?jobs config =
  (* Enumeration is one serial replay per kind; the crash points are the
     fan-out. Each point is an independent deterministic simulation, so
     {!Parallel.map} returns verdicts bit-identical to a serial run. *)
  let enums = List.map (fun kind -> enumerate config kind) config.kinds in
  let tasks =
    List.concat_map
      (fun e ->
        List.map
          (fun (index, at) -> (e.e_kind, index, at))
          (Array.to_list e.e_candidates))
      enums
  in
  let verdicts =
    Parallel.map ?jobs
      (fun (kind, event_index, at_ns) ->
        run_point config kind ~event_index ~at_ns)
      tasks
  in
  assemble config
    ~boundaries_by_kind:(List.map (fun e -> (e.e_kind, e.e_boundaries)) enums)
    verdicts

(* {2 Crash pairs and partition schedules}

   The quorum promise is stronger than machine loss: the acknowledged
   prefix must survive the primary {e plus} any (quorum - 1) replicas,
   and must not care whether a replica was partitioned off while commits
   were in flight. So the sweep gets a second axis: for every (strided)
   pair of boundary candidates (i, j) with t_i <= t_j, a schedule kills
   or partitions two things — the first action exactly at event boundary
   i (with the same replay-determinism clock cross-check as the single
   sweep), the second at the enumerated clock instant t_j.

   The second action is time-targeted, not event-targeted, on purpose:
   the first injection perturbs the world, so event index j no longer
   names the same instant — but the instant itself is still a
   well-defined point of the perturbed run. Pair points always run as
   full replays; the journal engine reconstructs a single machine's
   durable state and cannot synthesize the cluster's network. *)

type pair_schedule =
  | Primary_then_node  (* primary dies at t_i, replica r at t_j *)
  | Node_then_primary  (* replica r dies at t_i, primary at t_j *)
  | Partition_commit  (* r partitioned at t_i, primary dies at t_j *)
  | Partition_heal  (* r partitioned at t_i, healed midway, primary dies at t_j *)

let pair_schedule_name = function
  | Primary_then_node -> "primary-then-node"
  | Node_then_primary -> "node-then-primary"
  | Partition_commit -> "partition-commit"
  | Partition_heal -> "partition-heal"

let all_pair_schedules =
  [ Primary_then_node; Node_then_primary; Partition_commit; Partition_heal ]

let pair_schedule_of_name name =
  List.find_opt
    (fun s -> String.equal (pair_schedule_name s) name)
    all_pair_schedules

type pair_verdict = {
  pv_schedule : pair_schedule;
  pv_first_event : int;
  pv_first_ns : int;
  pv_second_ns : int;
  pv_node : int;
  pv_acked : int;
  pv_lost : int;
  pv_extra : int;
  pv_state_exact : bool;
  pv_invariant_violations : int;
  pv_elected : int;  (* leader of the recovery election; -1 if none *)
  pv_term : int;
  pv_election_quorate : bool;
  pv_contract_ok : bool;
}

let run_pair_point config ~schedule ~first_event ~first_ns ~second_ns ~node =
  let built = Scenario.build (effective_scenario config Machine_loss) in
  let quorum =
    match built.Scenario.quorum with
    | Some quorum -> quorum
    | None ->
        invalid_arg "Crash_surface: pair sweep requires the rapilog-quorum mode"
  in
  let sim = built.Scenario.sim in
  let track = Driver.make_tracking () in
  let monitor = Option.map (Rapilog.Invariants.attach sim) built.Scenario.logger in
  let stop_monitor () = Option.iter Rapilog.Invariants.stop monitor in
  Driver.spawn_loader built track ~after_load:(fun () ->
      Driver.spawn_clients built track);
  if not (Sim.run_to_event sim first_event) then
    failwith
      (Printf.sprintf "Crash_surface: event boundary %d beyond simulation end"
         first_event);
  let now_ns = Time.to_ns (Sim.now sim) in
  if now_ns <> first_ns then
    failwith
      (Printf.sprintf
         "Crash_surface: replay diverged at event %d: enumerated %d ns, \
          replayed %d ns"
         first_event first_ns now_ns);
  let kill_primary () =
    Hypervisor.Vmm.crash_guest built.Scenario.vmm;
    Power.Power_domain.lose built.Scenario.power;
    Net.Quorum.primary_lost quorum
  in
  let at ns fn = Sim.schedule_at sim (Time.of_ns ns) fn in
  (match schedule with
  | Primary_then_node ->
      kill_primary ();
      at second_ns (fun () -> Net.Quorum.node_lost quorum node)
  | Node_then_primary ->
      Net.Quorum.node_lost quorum node;
      at second_ns kill_primary
  | Partition_commit ->
      (* Partition during commit: the cluster keeps committing with the
         partitioned replica's appends held on the wire, then the
         primary dies with the partition still up. *)
      Net.Quorum.partition_node quorum node;
      at second_ns kill_primary
  | Partition_heal ->
      Net.Quorum.partition_node quorum node;
      at ((first_ns + second_ns) / 2) (fun () -> Net.Quorum.heal_node quorum node);
      at second_ns kill_primary);
  at (second_ns + Time.span_to_ns (Time.ms 2)) stop_monitor;
  Sim.run sim;
  let recovery =
    Dbms.Recovery.run
      ~log_device:(Scenario.recovery_log_device built)
      ~data_device:built.Scenario.data_physical
      ~wal_config:built.Scenario.wal_config
      ~pool_config:built.Scenario.config.Scenario.pool
  in
  let audit =
    Audit.check ~model:track.Driver.model ~acked:track.Driver.acked ~recovery
  in
  let invariant_violations =
    match monitor with
    | Some monitor -> List.length (Rapilog.Invariants.violations monitor)
    | None -> 0
  in
  let elected, term, quorate =
    match Net.Quorum.last_election quorum with
    | Some e ->
        (e.Net.Quorum.el_leader, e.Net.Quorum.el_term, e.Net.Quorum.el_quorum)
    | None -> (-1, 0, false)
  in
  {
    pv_schedule = schedule;
    pv_first_event = first_event;
    pv_first_ns = first_ns;
    pv_second_ns = second_ns;
    pv_node = node;
    pv_acked = List.length track.Driver.acked;
    pv_lost = List.length audit.Audit.durability.Rapilog.Durability.lost;
    pv_extra = List.length audit.Audit.durability.Rapilog.Durability.extra;
    pv_state_exact = audit.Audit.state_exact;
    pv_invariant_violations = invariant_violations;
    pv_elected = elected;
    pv_term = term;
    pv_election_quorate = quorate;
    pv_contract_ok =
      Rapilog.Durability.holds audit.Audit.durability
      && audit.Audit.state_exact
      && invariant_violations = 0;
  }

type pair_summary = {
  ps_schedule : pair_schedule;
  ps_points : int;
  ps_breaks : int;
  ps_lost : int;
}

type pair_result = {
  pr_mode : Scenario.mode;
  pr_candidates : int;  (* boundary candidates on each axis *)
  pr_pairs : int;  (* ordered pairs available before pruning *)
  pr_points : int;
  pr_breaks : int;
  pr_lost_total : int;
  pr_schedules : pair_summary list;
  pr_verdicts : pair_verdict list;
}

let sweep_pairs ?jobs config ~schedules ~target =
  if config.scenario.Scenario.mode <> Scenario.Rapilog_quorum then
    invalid_arg "Crash_surface.sweep_pairs: requires the rapilog-quorum mode";
  if target < 1 then invalid_arg "Crash_surface.sweep_pairs: target must be >= 1";
  let replicas = config.scenario.Scenario.quorum.Net.Quorum.replicas in
  let enum = enumerate config Machine_loss in
  let cands = enum.e_candidates in
  let n = Array.length cands in
  let pairs = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto i do
      pairs := (i, j) :: !pairs
    done
  done;
  let pairs = Array.of_list !pairs in
  let total = Array.length pairs in
  (* Prune to ~[target] pairs per schedule, strided over the flattened
     (i, j) grid so both axes stay covered. Every schedule sweeps the
     same pair set; the killed/partitioned replica rotates as
     (i + j) mod replicas so each node id gets hit across the grid. *)
  let stride = max 1 (total / target) in
  let selected = ref [] in
  let k = ref 0 in
  while !k < total do
    selected := pairs.(!k) :: !selected;
    k := !k + stride
  done;
  let selected = List.rev !selected in
  let tasks =
    List.concat_map
      (fun schedule ->
        List.map
          (fun (i, j) ->
            let first_event, first_ns = cands.(i) in
            let _, second_ns = cands.(j) in
            (schedule, first_event, first_ns, second_ns, (i + j) mod replicas))
          selected)
      schedules
  in
  let verdicts =
    Parallel.map ?jobs
      (fun (schedule, first_event, first_ns, second_ns, node) ->
        run_pair_point config ~schedule ~first_event ~first_ns ~second_ns ~node)
      tasks
  in
  let summary_of schedule =
    let of_schedule =
      List.filter (fun v -> v.pv_schedule = schedule) verdicts
    in
    {
      ps_schedule = schedule;
      ps_points = List.length of_schedule;
      ps_breaks =
        List.length (List.filter (fun v -> not v.pv_contract_ok) of_schedule);
      ps_lost = List.fold_left (fun acc v -> acc + v.pv_lost) 0 of_schedule;
    }
  in
  let summaries = List.map summary_of schedules in
  {
    pr_mode = config.scenario.Scenario.mode;
    pr_candidates = n;
    pr_pairs = total;
    pr_points = List.length verdicts;
    pr_breaks =
      List.fold_left (fun acc s -> acc + s.ps_breaks) 0 summaries;
    pr_lost_total = List.fold_left (fun acc s -> acc + s.ps_lost) 0 summaries;
    pr_schedules = summaries;
    pr_verdicts = verdicts;
  }

(* {2 Journal-based incremental reconstruction}

   The full-replay sweep above re-executes the whole scenario once per
   crash point: O(points × run length). The journal sweep executes the
   scenario {e once} per kind with a {!Desim.Journal} recording every
   durable-media mutation, buffer push/pop, write submission and commit
   acknowledgement — then walks the crash points in increasing event
   order, folding journal deltas into a single evolving media image, and
   synthesizes each point's post-crash state from the deltas that were
   still in flight at its boundary. Only recovery and the audit run per
   point.

   Soundness rests on two facts the code asserts wherever it can:

   - {b determinism}: the recording run executes the identical event
     sequence as any {!run_point} replay (recording appends to flat
     arrays and schedules nothing), so a journal record stamped with
     event index [i] describes exactly what the replay would have done
     at that index;
   - {b completeness}: every mutation that can reach durable media
     before a crash point settles is journaled — device-level transfer
     starts and completions, trusted-buffer admissions and drains,
     volume-level write submissions (the instant a request survives a
     guest crash), and client acknowledgements. Enumeration keeps
     stepping past the window until every submission inside it has its
     downstream records, so synthesis never reads off the journal's
     end. *)

let journal_supported (scenario : Scenario.config) =
  scenario.Scenario.mode = Scenario.Rapilog
  && (not scenario.Scenario.single_disk)
  && match scenario.Scenario.device with
     | Scenario.Disk _ | Scenario.Nvme _ -> true
     | Scenario.Flash _ -> false

(* The log-device timing the power-cut synthesis re-derives drain
   writes with: the same pure [write_timeline] arithmetic the live
   device executes, abstracted over the two journal-capable models. The
   disk's timeline depends on the head position; the NVMe's only on the
   clock — the [head] threaded through the re-drain loop is the head
   track for a disk and always 0 for NVMe. *)
type log_timing =
  | Hdd_timing of Storage.Hdd.config
  | Nvme_timing of Storage.Nvme.config

let timing_of_device = function
  | Scenario.Disk hdd -> Hdd_timing hdd
  | Scenario.Nvme nvme -> Nvme_timing nvme
  | Scenario.Flash _ ->
      invalid_arg "Crash_surface: journal sweep does not model the SATA SSD"

let timing_sector_size = function
  | Hdd_timing hdd -> hdd.Storage.Hdd.sector_size
  | Nvme_timing nvme -> nvme.Storage.Nvme.sector_size

let timing_head_of_lba timing lba =
  match timing with
  | Hdd_timing hdd -> Storage.Hdd.track_of_lba hdd lba
  | Nvme_timing _ -> 0

(* (start_ns, complete_ns, head-after) of a drain write submitted at
   [now_ns] with the device idle — the serial drainer never has a
   second write in flight, so the NVMe queue depth does not enter. *)
let timing_write_timeline timing ~now_ns ~head ~lba ~sectors =
  match timing with
  | Hdd_timing hdd ->
      let tl =
        Storage.Hdd.write_timeline hdd ~now_ns ~head_track:head ~lba ~sectors
      in
      (tl.Storage.Hdd.wt_start_ns, tl.Storage.Hdd.wt_complete_ns, tl.Storage.Hdd.wt_track)
  | Nvme_timing nvme ->
      let tl = Storage.Nvme.write_timeline nvme ~now_ns ~sectors in
      (tl.Storage.Nvme.wt_start_ns, tl.Storage.Nvme.wt_complete_ns, 0)

(* Everything the reconstruction needs about one kind's reference run:
   the journal, the boundary enumeration, the effective machine
   parameters, the endpoint ids, and the FIFO pairings between related
   record streams. All of it is immutable after this returns — chunk
   workers on other domains read it freely. *)
type prep = {
  p_kind : kind;
  p_enum : enumeration;
  p_journal : Journal.t;
  p_timing : log_timing;
  p_sector_size : int;
  p_buffer_bytes : int;
  p_drain_max : int;
  p_window_ns : int;  (* PSU hold-up of the effective configuration *)
  p_wal_config : Dbms.Wal.config;
  p_pool_config : Dbms.Buffer_pool.config;
  p_chunk_sectors : int;  (* 0 when the data volume is a single device *)
  p_log_dev : int;
  p_members : int array;  (* data-member device endpoints *)
  p_log_port : int;
  p_data_port : int;
  p_violations_ns : int array;  (* monitor violation instants, ascending *)
  (* FIFO pairings, by occurrence order. The drainer is the log device's
     only client, so the k-th Pop, the k-th log Write_start and the k-th
     log Write_complete describe one physical write; each WAL stream's
     force mutex keeps at most one submission outstanding, so submits
     and pushes pair FIFO within a stream's device region (and globally
     when [streams = 1]); each data-port Submit fans out into per-member
     segments served FIFO, so per member the k-th Write_start/-complete
     pair with the k-th expected segment. *)
  p_log_pops : int array;  (* journal positions *)
  p_log_starts : int array;
  p_log_completes : int array;
  p_log_submits : int array;
  p_pushes : int array;
  p_submit_push : int array;
      (* journal position of the Push admitting the k-th log-port
         Submit; -1 for submits past the settle horizon. With parallel
         streams the global submit→push order is NOT FIFO (admission's
         copy time scales with the write size), only each stream's is —
         this explicit pairing is what the os-crash synthesis walks. *)
  p_member_starts : int array array;
  p_member_completes : int array array;
  p_member_submit_pos : int array array;
      (* position of the Submit that produced the k-th write of member m *)
  p_shared : Dbms.Recovery.Incremental.shared option;
      (* future-stream record/index tables, built once per kind.
         [None] with parallel log streams: the incremental engine's
         single-prefix watermark does not model S independent durable
         prefixes, so those sweeps run full recovery per point. *)
}

let member_slot members endpoint =
  let rec go i =
    if i >= Array.length members then -1
    else if members.(i) = endpoint then i
    else go (i + 1)
  in
  go 0

let segments_of prep ~lba ~sectors =
  if prep.p_chunk_sectors = 0 then
    [ { Storage.Stripe.member = 0; member_lba = lba; global_off = lba; sectors } ]
  else
    Storage.Stripe.plan
      ~members:(Array.length prep.p_members)
      ~chunk_sectors:prep.p_chunk_sectors ~lba ~sectors

(* Build the pairing arrays with one pass over the journal, asserting
   the FIFO disciplines they encode. *)
let pair_journal prep_partial journal =
  let p = prep_partial in
  let log_pops = ref [] and log_starts = ref [] and log_completes = ref [] in
  let log_submits = ref [] and pushes = ref [] in
  let n_members = Array.length p.p_members in
  let member_starts = Array.make n_members [] in
  let member_completes = Array.make n_members [] in
  let member_submit_pos = Array.make n_members [] in
  (* Per-member queue of segments expected from data-port submissions:
     (member_lba, sectors, submit position). *)
  let expected : (int * int * int) Queue.t array =
    Array.init n_members (fun _ -> Queue.create ())
  in
  (* Stream region of a log-device lba: with one stream every submission
     (master block included) shares one FIFO; with several, each
     stream's region has its own. *)
  let streams = p.p_wal_config.Dbms.Wal.streams in
  let region_of_lba lba =
    if streams <= 1 then 0
    else begin
      let s =
        (lba - p.p_wal_config.Dbms.Wal.log_start_lba)
        / p.p_wal_config.Dbms.Wal.stream_stride_sectors
      in
      assert (s >= 0 && s < streams);
      s
    end
  in
  let pending_log_submits = Array.init (max 1 streams) (fun _ -> Queue.create ()) in
  let n_log_submits = ref 0 in
  let submit_push_pairs = ref [] in
  for pos = 0 to Journal.length journal - 1 do
    let a = Journal.a journal pos in
    match Journal.kind journal pos with
    | Journal.Pop ->
        assert (a = p.p_log_dev);
        log_pops := pos :: !log_pops
    | Journal.Push ->
        assert (a = p.p_log_dev);
        let push_lba = Journal.b journal pos in
        let lba, _sectors, k =
          Queue.pop pending_log_submits.(region_of_lba push_lba)
        in
        assert (lba = push_lba);
        submit_push_pairs := (k, pos) :: !submit_push_pairs;
        pushes := pos :: !pushes
    | Journal.Submit ->
        if a = p.p_log_port then begin
          Queue.push
            (Journal.b journal pos, Journal.c journal pos, !n_log_submits)
            pending_log_submits.(region_of_lba (Journal.b journal pos));
          incr n_log_submits;
          log_submits := pos :: !log_submits
        end
        else if a = p.p_data_port then
          List.iter
            (fun seg ->
              Queue.push
                (seg.Storage.Stripe.member_lba, seg.Storage.Stripe.sectors, pos)
                expected.(seg.Storage.Stripe.member))
            (segments_of p ~lba:(Journal.b journal pos)
               ~sectors:(Journal.c journal pos))
        else assert false
    | Journal.Write_start ->
        if a = p.p_log_dev then log_starts := pos :: !log_starts
        else begin
          let m = member_slot p.p_members a in
          assert (m >= 0);
          let member_lba, sectors, submit = Queue.pop expected.(m) in
          assert (member_lba = Journal.b journal pos);
          assert (sectors = Journal.c journal pos);
          member_starts.(m) <- pos :: member_starts.(m);
          member_submit_pos.(m) <- submit :: member_submit_pos.(m)
        end
    | Journal.Write_complete ->
        if a = p.p_log_dev then log_completes := pos :: !log_completes
        else begin
          let m = member_slot p.p_members a in
          assert (m >= 0);
          member_completes.(m) <- pos :: member_completes.(m)
        end
    | Journal.Ack -> ()
  done;
  let arr l = Array.of_list (List.rev l) in
  let submit_push = Array.make !n_log_submits (-1) in
  List.iter (fun (k, pos) -> submit_push.(k) <- pos) !submit_push_pairs;
  let p =
    {
      p with
      p_log_pops = arr !log_pops;
      p_log_starts = arr !log_starts;
      p_log_completes = arr !log_completes;
      p_log_submits = arr !log_submits;
      p_pushes = arr !pushes;
      p_submit_push = submit_push;
      p_member_starts = Array.map arr member_starts;
      p_member_completes = Array.map arr member_completes;
      p_member_submit_pos = Array.map arr member_submit_pos;
    }
  in
  (* Cross-check the log-device FIFO: pop k, start k and complete k name
     the same write. *)
  Array.iteri
    (fun k pop ->
      let check arr =
        if k < Array.length arr then
          assert (Journal.b journal arr.(k) = Journal.b journal pop)
      in
      check p.p_log_starts;
      check p.p_log_completes)
    p.p_log_pops;
  (* And the member FIFO the synthesis indexes by: the k-th complete
     must describe the k-th start's write. Trivial on the disk's serial
     actuator; on NVMe it holds because every data write is one
     page-sized program (equal service), and this assert is what pins
     that if the pool ever mixes sizes. *)
  Array.iteri
    (fun m starts ->
      let completes = p.p_member_completes.(m) in
      Array.iteri
        (fun k sp ->
          if k < Array.length completes then
            assert (Journal.b journal completes.(k) = Journal.b journal sp))
        starts)
    p.p_member_starts;
  p

let grace_bound = Time.ms 500
let settle_check_steps = 2048

(* One reference run of [kind]'s effective configuration with journal
   recording on. Returns the boundary enumeration (identical to
   {!enumerate}'s — recording perturbs nothing) plus the paired journal.
   After the window closes, the run keeps stepping until every
   submission and drain issued inside it has its downstream records in
   the journal, so per-point synthesis never needs records the run
   didn't produce. *)
let enumerate_journal config kind =
  if config.stride < 1 then invalid_arg "Crash_surface: stride must be >= 1";
  if not (journal_supported config.scenario) then
    invalid_arg
      "Crash_surface: journal sweep requires Rapilog mode, a dedicated log \
       device, and a disk or NVMe model";
  let effective = effective_scenario config kind in
  let journal = Journal.create () in
  Journal.start_recording journal;
  Fun.protect ~finally:Journal.stop_recording @@ fun () ->
  let built = Scenario.build effective in
  let sim = built.Scenario.sim in
  let track = Driver.make_tracking () in
  let monitor = Option.map (Rapilog.Invariants.attach sim) built.Scenario.logger in
  let window = ref None in
  Driver.spawn_loader built track ~after_load:(fun () ->
      let ws = Time.add (Sim.now sim) config.window_start in
      window := Some (ws, Time.add ws config.window_length);
      Driver.spawn_clients built track);
  let boundaries = ref 0 in
  let candidates = ref [] in
  let cut_len = ref None in
  while !cut_len = None && Sim.step sim do
    match !window with
    | None -> ()
    | Some (ws, we) ->
        let now = Sim.now sim in
        if Time.(we <= now) then cut_len := Some (Journal.length journal)
        else if Time.(ws <= now) then begin
          if !boundaries mod config.stride = 0 then
            candidates :=
              (Sim.events_executed sim, Time.to_ns now) :: !candidates;
          incr boundaries
        end
  done;
  let cut_len =
    match !cut_len with
    | Some n -> n
    | None -> failwith "Crash_surface.enumerate_journal: window never closed"
  in
  let ws, we =
    match !window with Some (ws, we) -> (ws, we) | None -> assert false
  in
  let log_dev = Storage.Block.journal_id built.Scenario.log_physical in
  let log_port = Storage.Block.journal_id built.Scenario.log_attached in
  let data_port = Storage.Block.journal_id built.Scenario.data_attached in
  let members = Array.map Storage.Block.journal_id built.Scenario.data_members in
  assert (log_dev >= 0 && log_port >= 0 && data_port >= 0);
  Array.iter (fun m -> assert (m >= 0)) members;
  let chunk_sectors = built.Scenario.data_chunk_sectors in
  (* Demand side, frozen at window close: what the records inside the
     window still owe the journal. *)
  let n_members = Array.length members in
  let pops_due = ref 0 and log_submits_due = ref 0 in
  let member_due = Array.make n_members 0 in
  let plan_segments ~lba ~sectors =
    if chunk_sectors = 0 then
      [ { Storage.Stripe.member = 0; member_lba = lba; global_off = lba; sectors } ]
    else
      Storage.Stripe.plan ~members:n_members ~chunk_sectors ~lba ~sectors
  in
  for pos = 0 to cut_len - 1 do
    match Journal.kind journal pos with
    | Journal.Pop -> incr pops_due
    | Journal.Submit ->
        let a = Journal.a journal pos in
        if a = log_port then incr log_submits_due
        else if a = data_port then
          List.iter
            (fun seg ->
              member_due.(seg.Storage.Stripe.member) <-
                member_due.(seg.Storage.Stripe.member) + 1)
            (plan_segments ~lba:(Journal.b journal pos)
               ~sectors:(Journal.c journal pos))
    | _ -> ()
  done;
  (* Supply side, maintained incrementally over the grace period. *)
  let log_completes = ref 0 and pushes = ref 0 in
  let member_completes = Array.make n_members 0 in
  let scanned = ref 0 in
  let settled () =
    for pos = !scanned to Journal.length journal - 1 do
      let a = Journal.a journal pos in
      match Journal.kind journal pos with
      | Journal.Write_complete ->
          if a = log_dev then incr log_completes
          else begin
            let m = member_slot members a in
            if m >= 0 then member_completes.(m) <- member_completes.(m) + 1
          end
      | Journal.Push -> incr pushes
      | _ -> ()
    done;
    scanned := Journal.length journal;
    !log_completes >= !pops_due
    && !pushes >= !log_submits_due
    && Array.for_all2 ( <= ) member_due member_completes
  in
  let deadline = Time.add we grace_bound in
  while not (settled ()) do
    if Time.(deadline < Sim.now sim) then
      failwith "Crash_surface.enumerate_journal: run did not settle in grace";
    let steps = ref 0 in
    while !steps < settle_check_steps && Sim.step sim do
      incr steps
    done;
    if !steps = 0 && not (settled ()) then
      failwith "Crash_surface.enumerate_journal: simulation ended unsettled"
  done;
  let enum =
    {
      e_kind = kind;
      e_window_start_ns = Time.to_ns ws;
      e_window_end_ns = Time.to_ns we;
      e_boundaries = !boundaries;
      e_candidates = Array.of_list (List.rev !candidates);
    }
  in
  let violations_ns =
    match monitor with
    | None -> [||]
    | Some monitor ->
        Array.of_list
          (List.map
             (fun v -> Time.to_ns v.Rapilog.Invariants.at)
             (Rapilog.Invariants.violations monitor))
  in
  let timing = timing_of_device effective.Scenario.device in
  let sector_size = timing_sector_size timing in
  (* The future stream: every log push's payload at its stream offset,
     later pushes overwriting earlier ones (a force appending into a
     partially-filled tail sector re-pushes that sector fuller). Every
     point's durable log is a verified prefix of this image — the
     incremental engine's whole scan/analysis phase reduces to binary
     searches over its one-time decode. Single-stream only: with
     parallel streams there is no one prefix, so the per-point fallback
     is a full recovery pass over the synthesized media. *)
  let shared =
    if built.Scenario.wal_config.Dbms.Wal.streams > 1 then None
    else begin
      let future =
        let start = built.Scenario.wal_config.Dbms.Wal.log_start_lba in
        let fb = ref (Bytes.make 65536 '\000') and flen = ref 0 in
        for pos = 0 to Journal.length journal - 1 do
          match Journal.kind journal pos with
          | Journal.Push when Journal.a journal pos = log_dev ->
              let lba = Journal.b journal pos in
              assert (lba >= start);
              let data = Journal.payload journal pos in
              let off = (lba - start) * sector_size in
              let len = String.length data in
              if off + len > Bytes.length !fb then begin
                let cap = ref (Bytes.length !fb) in
                while !cap < off + len do
                  cap := !cap * 2
                done;
                let fresh = Bytes.make !cap '\000' in
                Bytes.blit !fb 0 fresh 0 !flen;
                fb := fresh
              end;
              Bytes.blit_string data 0 !fb off len;
              if off + len > !flen then flen := off + len
          | _ -> ()
        done;
        Bytes.sub_string !fb 0 !flen
      in
      Some
        (Dbms.Recovery.Incremental.prepare ~wal_config:built.Scenario.wal_config
           ~pool_config:built.Scenario.config.Scenario.pool
           ~log_sector_size:sector_size ~future)
    end
  in
  let prep_partial =
    {
      p_kind = kind;
      p_enum = enum;
      p_journal = journal;
      p_timing = timing;
      p_sector_size = sector_size;
      p_buffer_bytes =
        effective.Scenario.logger.Rapilog.Trusted_logger.buffer_bytes;
      p_drain_max =
        effective.Scenario.logger.Rapilog.Trusted_logger.drain_max_bytes;
      p_window_ns =
        (* Machine loss has no residual-energy window: the devices are
           dead at the boundary instant itself. *)
        (match kind with
        | Machine_loss -> 0
        | Os_crash | Power_cut | Power_cut_tight ->
            Time.span_to_ns (Power.Psu.window effective.Scenario.psu));
      p_wal_config = built.Scenario.wal_config;
      p_pool_config = built.Scenario.config.Scenario.pool;
      p_chunk_sectors = chunk_sectors;
      p_log_dev = log_dev;
      p_members = members;
      p_log_port = log_port;
      p_data_port = data_port;
      p_violations_ns = violations_ns;
      p_log_pops = [||];
      p_log_starts = [||];
      p_log_completes = [||];
      p_log_submits = [||];
      p_pushes = [||];
      p_submit_push = [||];
      p_member_starts = [||];
      p_member_completes = [||];
      p_member_submit_pos = [||];
      p_shared = shared;
    }
  in
  pair_journal prep_partial journal

(* The evolving image of one kind's reference run at a boundary: the
   durable media as of the boundary, the trusted-buffer replica, the
   client-side model, and the in-flight bookkeeping synthesis needs.
   Strictly monotone — a cursor only ever advances. *)
type cursor = {
  mutable pos : int;  (* next journal position to fold in *)
  log_base : Storage.Block.Media.t;
  member_base : Storage.Block.Media.t array;
  inc : Dbms.Recovery.Incremental.t option;
      (* incremental recovery cache over the base image; fed every base
         durable write, consulted per point instead of a full pass.
         [None] for multi-stream sweeps (full recovery per point). *)
  replica : Rapilog.Ring_buffer.t;
  model : (int, string) Hashtbl.t;
  (* Acknowledged txids as a sorted array: acks arrive near-ascending,
     and the per-point audit wants a merge walk, not a set build. *)
  mutable acked : int array;
  mutable n_acked : int;
  mutable pops_seen : int;
  mutable log_completes_seen : int;
  mutable pushes_seen : int;
  mutable log_submits_seen : int;
  mutable last_log_lba : int;  (* of the last completed log write; -1 if none *)
  member_completes_seen : int array;
  member_expected : int array;  (* segments owed by data submissions so far *)
}

let cursor_create prep =
  let journal = prep.p_journal in
  let media_of endpoint =
    let ep = Journal.endpoint journal endpoint in
    Storage.Block.Media.create ~sector_size:ep.Journal.ep_sector_size
      ~capacity_sectors:ep.Journal.ep_capacity_sectors
  in
  let n_members = Array.length prep.p_members in
  let log_base = media_of prep.p_log_dev in
  let member_base = Array.map media_of prep.p_members in
  (* A frozen view of the evolving base data volume for the incremental
     cache's page probes: media are mutable, so reads reflect every
     cursor advance. *)
  let data_base () =
    let member_frozen =
      Array.map (Storage.Block.of_media ~model:"journal-base") member_base
    in
    if prep.p_chunk_sectors = 0 then member_frozen.(0)
    else
      Storage.Stripe.create
        (Sim.create ~seed:0L ())
        ~chunk_sectors:prep.p_chunk_sectors member_frozen
  in
  {
    pos = 0;
    log_base;
    member_base;
    inc =
      Option.map
        (fun shared ->
          Dbms.Recovery.Incremental.create shared ~data_base:(data_base ()))
        prep.p_shared;
    replica =
      Rapilog.Ring_buffer.create ~sector_size:prep.p_sector_size
        ~capacity_bytes:prep.p_buffer_bytes;
    model = Hashtbl.create 4096;
    acked = Array.make 1024 0;
    n_acked = 0;
    pops_seen = 0;
    log_completes_seen = 0;
    pushes_seen = 0;
    log_submits_seen = 0;
    last_log_lba = -1;
    member_completes_seen = Array.make n_members 0;
    member_expected = Array.make n_members 0;
  }

(* A member write's sector ranges in the data volume's (striped) address
   space — the inverse of {!Storage.Stripe.plan}'s geometry, split at
   chunk boundaries. *)
let iter_global_ranges prep ~member ~lba ~sectors f =
  if sectors > 0 then begin
    if prep.p_chunk_sectors = 0 then f lba sectors
    else begin
      let members = Array.length prep.p_members in
      let chunk = prep.p_chunk_sectors in
      let l = ref lba and remaining = ref sectors in
      while !remaining > 0 do
        let within = !l mod chunk in
        let here = min !remaining (chunk - within) in
        f (((((!l / chunk) * members) + member) * chunk) + within) here;
        l := !l + here;
        remaining := !remaining - here
      done
    end
  end

let cursor_ack cur txid =
  if cur.n_acked = Array.length cur.acked then begin
    let fresh = Array.make (2 * cur.n_acked) 0 in
    Array.blit cur.acked 0 fresh 0 cur.n_acked;
    cur.acked <- fresh
  end;
  let i = ref cur.n_acked in
  while !i > 0 && cur.acked.(!i - 1) > txid do
    decr i
  done;
  Array.blit cur.acked !i cur.acked (!i + 1) (cur.n_acked - !i);
  cur.acked.(!i) <- txid;
  cur.n_acked <- cur.n_acked + 1

(* Fold in every journal record up to and including event [boundary].
   The replica re-executes the ring-buffer operations the logger
   performed, asserting each matches the journaled outcome — a live
   differential check of the reconstruction against the reference run. *)
let cursor_advance prep cur ~boundary =
  let j = prep.p_journal in
  let len = Journal.length j in
  while cur.pos < len && Journal.index j cur.pos <= boundary do
    let pos = cur.pos in
    let a = Journal.a j pos in
    (match Journal.kind j pos with
    | Journal.Write_start -> ()
    | Journal.Write_complete ->
        let lba = Journal.b j pos in
        if a = prep.p_log_dev then begin
          let data = Journal.payload j pos in
          Storage.Block.Media.write cur.log_base ~lba ~data;
          Option.iter
            (fun inc -> Dbms.Recovery.Incremental.note_log_write inc ~lba ~data)
            cur.inc;
          cur.log_completes_seen <- cur.log_completes_seen + 1;
          cur.last_log_lba <- lba
        end
        else begin
          let m = member_slot prep.p_members a in
          let data = Journal.payload j pos in
          Storage.Block.Media.write cur.member_base.(m) ~lba ~data;
          Option.iter
            (fun inc ->
              iter_global_ranges prep ~member:m ~lba
                ~sectors:(String.length data / prep.p_sector_size)
                (fun glba gsectors ->
                  Dbms.Recovery.Incremental.note_data_write inc ~lba:glba
                    ~sectors:gsectors))
            cur.inc;
          cur.member_completes_seen.(m) <- cur.member_completes_seen.(m) + 1
        end
    | Journal.Push ->
        let lba = Journal.b j pos in
        let data = Journal.payload j pos in
        let ok = Rapilog.Ring_buffer.try_push cur.replica ~lba ~data in
        assert ok;
        Option.iter
          (fun inc -> Dbms.Recovery.Incremental.note_push inc ~lba ~data)
          cur.inc;
        cur.pushes_seen <- cur.pushes_seen + 1
    | Journal.Pop ->
        (match
           Rapilog.Ring_buffer.pop_coalesced cur.replica
             ~max_bytes:prep.p_drain_max
         with
        | Some entry ->
            assert (entry.Rapilog.Ring_buffer.lba = Journal.b j pos);
            assert (String.length entry.Rapilog.Ring_buffer.data = Journal.c j pos)
        | None -> assert false);
        cur.pops_seen <- cur.pops_seen + 1
    | Journal.Submit ->
        if a = prep.p_log_port then
          cur.log_submits_seen <- cur.log_submits_seen + 1
        else
          List.iter
            (fun seg ->
              cur.member_expected.(seg.Storage.Stripe.member) <-
                cur.member_expected.(seg.Storage.Stripe.member) + 1)
            (segments_of prep ~lba:(Journal.b j pos)
               ~sectors:(Journal.c j pos))
    | Journal.Ack ->
        cursor_ack cur a;
        List.iter
          (fun (key, value) ->
            match value with
            | Some v -> Hashtbl.replace cur.model key v
            | None -> Hashtbl.remove cur.model key)
          (Driver.decode_ack_writes (Journal.payload j pos)));
    cur.pos <- pos + 1
  done

(* Torn-write randomness for one crash point. A live device draws its
   tears off a generator it never touches before the cut, one draw per
   in-flight write in submission order — so a point's draws come
   sequentially off one fresh per-endpoint copy of the registered state.
   The disk has at most one write in flight; NVMe's [queue_depth]
   concurrency is where the sequencing matters. *)
type tears = { mutable t_rngs : (int * Rng.t) list }

let tear_draw prep tears ~endpoint ~sectors =
  let rng =
    match List.assoc_opt endpoint tears.t_rngs with
    | Some rng -> rng
    | None -> (
        let ep = Journal.endpoint prep.p_journal endpoint in
        match ep.Journal.ep_rng with
        | Some rng ->
            let rng = Rng.copy rng in
            tears.t_rngs <- (endpoint, rng) :: tears.t_rngs;
            rng
        | None -> assert false)
  in
  Rng.int rng (sectors + 1)

(* A per-point overlay that keeps the ordered write list alongside the
   media image: the media feeds the frozen devices (master block, page
   loads, digests) and the list feeds the incremental recovery engine,
   guaranteed in sync because one call produces both. Entries are
   [(lba, data, persisted_sectors, push_derived)]; a torn write
   persists a prefix. [push_derived] marks writes whose bytes replay
   buffered pushes — the engine trusts them below its push watermark;
   recorded device batches (whose tail sector may be staler than a
   later re-push) must pass [trusted:false] to be compared directly. *)
type sink = {
  sk_media : Storage.Block.Media.t;
  sk_sector_size : int;
  mutable sk_writes : (int * string * int * bool) list;  (* newest-first *)
  mutable sk_count : int;
}

let sink_over base =
  {
    sk_media = Storage.Block.Media.overlay base;
    sk_sector_size = Storage.Block.Media.sector_size base;
    sk_writes = [];
    sk_count = 0;
  }

let sink_write s ~trusted ~lba ~data =
  Storage.Block.Media.write s.sk_media ~lba ~data;
  s.sk_writes <-
    (lba, data, String.length data / s.sk_sector_size, trusted) :: s.sk_writes;
  s.sk_count <- s.sk_count + 1

let sink_write_prefix s ~trusted ~lba ~data ~sectors =
  Storage.Block.Media.write_prefix s.sk_media ~lba ~data ~sectors;
  s.sk_writes <- (lba, data, sectors, trusted) :: s.sk_writes;
  s.sk_count <- s.sk_count + 1

(* OS crash at [boundary]: the guest dies, the trusted side survives
   with power. The pending drain write completes, everything buffered
   drains (coalescing affects only timing, not final media), the one
   possibly-in-the-gap admission completes in the surviving backend, and
   every data write already submitted to the backend reaches media in
   full. *)
let synth_os_crash prep cur ~boundary ~log_sink ~member_sinks =
  let j = prep.p_journal in
  if cur.pops_seen > cur.log_completes_seen then begin
    assert (cur.pops_seen = cur.log_completes_seen + 1);
    let cp = prep.p_log_completes.(cur.log_completes_seen) in
    (* A recorded device batch: its tail sector can be staler than a
       later re-push, so it is not watermark-trusted. *)
    sink_write log_sink ~trusted:false ~lba:(Journal.b j cp)
      ~data:(Journal.payload j cp)
  end;
  Rapilog.Ring_buffer.iter cur.replica (fun entry ->
      sink_write log_sink ~trusted:true ~lba:entry.Rapilog.Ring_buffer.lba
        ~data:entry.Rapilog.Ring_buffer.data);
  (* Post-boundary admissions, in push order: submissions already at the
     logger whose admission had not fired at the boundary. A single WAL
     stream holds at most one in the gap (the force mutex); with S
     parallel streams each stream's force can have one outstanding, so
     up to S replay here — all beyond the push watermark. Pending-ness
     is per submit (its paired push falls past the boundary), because
     with several streams a long copy can still be in flight while later
     short submissions of other streams have already been admitted. *)
  let pending = ref [] in
  for k = 0 to cur.log_submits_seen - 1 do
    let pp = prep.p_submit_push.(k) in
    assert (pp >= 0);
    if Journal.index j pp > boundary then pending := pp :: !pending
  done;
  List.iter
    (fun pp ->
      sink_write log_sink ~trusted:false ~lba:(Journal.b j pp)
        ~data:(Journal.payload j pp))
    (List.sort compare !pending);
  Array.iteri
    (fun m sink ->
      for k = cur.member_completes_seen.(m) to cur.member_expected.(m) - 1 do
        let cp = prep.p_member_completes.(m).(k) in
        sink_write sink ~trusted:false ~lba:(Journal.b j cp)
          ~data:(Journal.payload j cp)
      done)
    member_sinks

(* The fate of one write racing the hold-up expiry at [dead]. The event
   queue breaks time ties by insertion order, and the device-death event
   is inserted at the injection boundary — so a write whose transfer was
   already running at the boundary (its completion event predates the
   death event) still persists when completing exactly at [dead],
   whereas any transfer scheduled after the boundary loses that tie. *)
type fate = Persists | Torn | Dropped

let write_fate ~started_at_boundary ~s ~c ~dead =
  if started_at_boundary then if c <= dead then Persists else Torn
  else if c < dead then Persists
  else if s < dead then Torn
  else Dropped

(* Machine loss: death is not an event racing the queue — the injection
   kills the devices inline at the boundary, before any same-instant
   completion can fire. A transfer already on the platter tears; one not
   yet started never happens. *)
let write_fate_instant ~started_at_boundary =
  if started_at_boundary then Torn else Dropped

(* Power cut at [boundary]: admission closes at the cut and the guest
   halts (the power-fail interrupt), so durable state evolves only
   through the trusted drain and the data writes already submitted —
   each racing the PSU window. Drain timing after the boundary is
   re-derived with the device model's pure [write_timeline], the same
   arithmetic the live device executes. *)
let synth_power_cut prep cur ~boundary ~b_time ~log_sink ~member_sinks =
  let j = prep.p_journal in
  let tears = { t_rngs = [] } in
  let dead = b_time + prep.p_window_ns in
  let instant = prep.p_kind = Machine_loss in
  let fate ~started_at_boundary ~s ~c =
    if instant then write_fate_instant ~started_at_boundary
    else write_fate ~started_at_boundary ~s ~c ~dead
  in
  let resume = ref None in
  (* The drain write already popped at the boundary, if any. *)
  if cur.pops_seen > cur.log_completes_seen then begin
    assert (cur.pops_seen = cur.log_completes_seen + 1);
    let k = cur.log_completes_seen in
    let sp = prep.p_log_starts.(k) and cp = prep.p_log_completes.(k) in
    let s = Journal.time_ns j sp and c = Journal.time_ns j cp in
    let lba = Journal.b j cp in
    let data = Journal.payload j cp in
    let sectors = Journal.c j cp in
    match fate ~started_at_boundary:(Journal.index j sp <= boundary) ~s ~c with
    | Persists ->
        (* A recorded device batch, like the os-crash pending write:
           compared directly, not watermark-trusted. *)
        sink_write log_sink ~trusted:false ~lba ~data;
        resume := Some (c, timing_head_of_lba prep.p_timing lba)
    | Torn ->
        let persisted = tear_draw prep tears ~endpoint:prep.p_log_dev ~sectors in
        sink_write_prefix log_sink ~trusted:false ~lba ~data ~sectors:persisted
    | Dropped -> ()
  end
  else begin
    (* Drainer idle or between pops: the next pop fires at the boundary
       instant with the head where the last completed write left it. *)
    let head =
      if cur.last_log_lba < 0 then 0
      else timing_head_of_lba prep.p_timing cur.last_log_lba
    in
    resume := Some (b_time, head)
  end;
  (match !resume with
  | None -> ()  (* the pending write tore or dropped: the device is dead *)
  | Some (start_ns, head) ->
      (* Re-drain what remains of the buffer, batch by batch, each write
         chained at the previous completion — exactly the drainer's loop,
         with timing from the shared pure model. *)
      let ring =
        Rapilog.Ring_buffer.create ~sector_size:prep.p_sector_size
          ~capacity_bytes:prep.p_buffer_bytes
      in
      Rapilog.Ring_buffer.iter cur.replica (fun entry ->
          let ok =
            Rapilog.Ring_buffer.try_push ring ~lba:entry.Rapilog.Ring_buffer.lba
              ~data:entry.Rapilog.Ring_buffer.data
          in
          assert ok);
      let cursor_ns = ref start_ns and head_track = ref head in
      let running = ref true in
      while !running do
        match
          Rapilog.Ring_buffer.pop_coalesced ring ~max_bytes:prep.p_drain_max
        with
        | None -> running := false
        | Some { Rapilog.Ring_buffer.lba; data } ->
            let sectors = String.length data / prep.p_sector_size in
            let start_ns, complete_ns, track =
              timing_write_timeline prep.p_timing ~now_ns:!cursor_ns
                ~head:!head_track ~lba ~sectors
            in
            if complete_ns < dead then begin
              sink_write log_sink ~trusted:true ~lba ~data;
              cursor_ns := complete_ns;
              head_track := track
            end
            else begin
              if start_ns < dead then begin
                let persisted =
                  tear_draw prep tears ~endpoint:prep.p_log_dev ~sectors
                in
                sink_write_prefix log_sink ~trusted:true ~lba ~data
                  ~sectors:persisted
              end;
              running := false
            end
      done);
  (* Data writes already submitted race the window on their journaled
     schedule: a member serves FIFO, and nothing submitted after the
     boundary exists in the crash world to run ahead of them. A torn
     write does not end the member's story — an NVMe member holds up to
     [queue_depth] programs in flight, each tearing independently in
     submission order (the disk's serial actuator makes the write after
     a torn one necessarily [Dropped], so it loses nothing by the
     continue). Program starts are monotone in submission order, so the
     first [Dropped] write is terminal on every model. *)
  Array.iteri
    (fun m sink ->
      let running = ref true in
      let k = ref cur.member_completes_seen.(m) in
      while !running && !k < cur.member_expected.(m) do
        let sp = prep.p_member_starts.(m).(!k) in
        let cp = prep.p_member_completes.(m).(!k) in
        let s = Journal.time_ns j sp and c = Journal.time_ns j cp in
        let lba = Journal.b j cp in
        let data = Journal.payload j cp in
        (match
           fate ~started_at_boundary:(Journal.index j sp <= boundary) ~s ~c
         with
        | Persists -> sink_write sink ~trusted:false ~lba ~data
        | Torn ->
            let persisted =
              tear_draw prep tears ~endpoint:prep.p_members.(m)
                ~sectors:(Journal.c j cp)
            in
            sink_write_prefix sink ~trusted:false ~lba ~data ~sectors:persisted
        | Dropped -> running := false);
        incr k
      done)
    member_sinks

let violations_until prep b_time =
  let count = ref 0 in
  Array.iter
    (fun at -> if at <= b_time then incr count)
    prep.p_violations_ns;
  !count

let reconstruct_point config prep cur ~event_index ~at_ns =
  cursor_advance prep cur ~boundary:event_index;
  let log_sink = sink_over cur.log_base in
  let member_sinks = Array.map sink_over cur.member_base in
  (match prep.p_kind with
  | Os_crash -> synth_os_crash prep cur ~boundary:event_index ~log_sink ~member_sinks
  | Power_cut | Power_cut_tight | Machine_loss ->
      (* Machine loss is a power cut with a zero window ([p_window_ns]
         is 0 and fates are instant): the pending drain write tears, the
         re-drain loop writes nothing, queued data writes vanish. *)
      synth_power_cut prep cur ~boundary:event_index ~b_time:at_ns ~log_sink
        ~member_sinks);
  let frozen_log = Storage.Block.of_media ~model:"journal-log" log_sink.sk_media in
  let frozen_members =
    Array.map
      (fun sink -> Storage.Block.of_media ~model:"journal-member" sink.sk_media)
      member_sinks
  in
  let frozen_data =
    if prep.p_chunk_sectors = 0 then frozen_members.(0)
    else
      Storage.Stripe.create
        (Sim.create ~seed:0L ())
        ~chunk_sectors:prep.p_chunk_sectors frozen_members
  in
  let recovery =
    match cur.inc with
    | Some inc ->
        let data_overlay = ref [] in
        Array.iteri
          (fun m sink ->
            List.iter
              (fun (lba, _data, persisted, _trusted) ->
                iter_global_ranges prep ~member:m ~lba ~sectors:persisted
                  (fun glba gsectors ->
                    data_overlay := (glba, gsectors) :: !data_overlay))
              sink.sk_writes)
          member_sinks;
        Dbms.Recovery.Incremental.run inc
          ~log_overlay:(List.rev log_sink.sk_writes) ~data_overlay:!data_overlay
          ~log_device:frozen_log ~data_device:frozen_data
    | None ->
        (* Multi-stream: the synthesized media still cost only journal
           folding, but each point pays a full recovery pass — there is
           no single verified-prefix watermark to increment over. *)
        Dbms.Recovery.run ~log_device:frozen_log ~data_device:frozen_data
          ~wal_config:prep.p_wal_config ~pool_config:prep.p_pool_config
  in
  let audit =
    Audit.check_sorted ~model:cur.model ~acked:cur.acked ~n_acked:cur.n_acked
      ~recovery
  in
  let invariant_violations = violations_until prep at_ns in
  {
    v_kind = prep.p_kind;
    v_event_index = event_index;
    v_at_ns = at_ns;
    v_acked = cur.n_acked;
    v_lost = List.length audit.Audit.durability.Rapilog.Durability.lost;
    v_extra = List.length audit.Audit.durability.Rapilog.Durability.extra;
    v_state_exact = audit.Audit.state_exact;
    v_diff_count = audit.Audit.diff_count;
    v_invariant_violations = invariant_violations;
    v_buffered_at_cut = Rapilog.Ring_buffer.bytes_used cur.replica;
    v_media_crc =
      (if config.media_digests then media_digest ~log:frozen_log ~data:frozen_data
       else -1);
    v_stats = Dbms.Recovery.stats recovery;
    (* Journal sweeps support only the plain Rapilog mode: no tier. *)
    v_tenant_acked = 0;
    v_tenant_lost = 0;
    v_tenant_extra = 0;
    v_tenant_breaks = 0;
    v_contract_ok =
      Rapilog.Durability.holds audit.Audit.durability
      && audit.Audit.state_exact
      && invariant_violations = 0;
  }

(* Contiguous candidate ranges, at most [max_chunks] of them. The chunk
   count is a function of the point count alone — never of the worker
   count — so the work partition (and therefore every cursor's replay
   prefix) is identical at any parallelism, which is what makes the
   parallel sweep bit-identical to the serial one by construction. *)
let max_chunks = 16

let chunk_ranges n =
  let chunks = min n max_chunks in
  List.init chunks (fun i -> (n * i / chunks, n * (i + 1) / chunks))

(* Re-emit per-chunk verdict lists in canonical kind-major ascending
   order and assemble the final result — the common tail of the
   chunked engines. *)
let assemble_chunks config preps chunk_results =
  let kind_order kind =
    let rec go i = function
      | [] -> assert false
      | k :: _ when k = kind -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 config.kinds
  in
  let verdicts =
    chunk_results
    |> List.stable_sort (fun (ka, la, _) (kb, lb, _) ->
           match compare (kind_order ka) (kind_order kb) with
           | 0 -> compare la lb
           | c -> c)
    |> List.concat_map (fun (_, _, vs) -> vs)
  in
  assemble config
    ~boundaries_by_kind:
      (List.map (fun p -> (p.p_kind, p.p_enum.e_boundaries)) preps)
    verdicts

let sweep_journal ?jobs config =
  let preps = List.map (fun kind -> enumerate_journal config kind) config.kinds in
  (* Within each kind the chunks are handed out in descending
     event-index order: the latest chunks replay the longest journal
     prefix, so starting them first keeps the stragglers off the
     critical path. Results are re-emitted in canonical ascending
     order by {!assemble_chunks}. *)
  let tasks =
    List.concat_map
      (fun prep ->
        let n = Array.length prep.p_enum.e_candidates in
        List.rev_map (fun (lo, hi) -> (prep, lo, hi)) (chunk_ranges n))
      preps
  in
  let chunk_results =
    Parallel.map ?jobs
      (fun (prep, lo, hi) ->
        let cur = cursor_create prep in
        let out = ref [] in
        for i = lo to hi - 1 do
          let event_index, at_ns = prep.p_enum.e_candidates.(i) in
          out := reconstruct_point config prep cur ~event_index ~at_ns :: !out
        done;
        (prep.p_kind, lo, List.rev !out))
      tasks
  in
  assemble_chunks config preps chunk_results

(* A deep snapshot of a cursor at its current fold position. The media
   fork at page granularity ({!Storage.Block.Media.fork}, O(pages) per
   image); the ring replica, model table, ack array, progress counters
   and the incremental-recovery cursor are copied outright, the latter
   re-rooted on a frozen view of the forked members. Nothing mutable is
   shared with the original afterwards — and the COW media replace
   shared pages rather than mutate them — so the fork can be handed to
   a worker domain while the producer keeps folding. *)
let cursor_fork prep cur =
  let log_base = Storage.Block.Media.fork cur.log_base in
  let member_base = Array.map Storage.Block.Media.fork cur.member_base in
  let data_base () =
    let member_frozen =
      Array.map (Storage.Block.of_media ~model:"fork-base") member_base
    in
    if prep.p_chunk_sectors = 0 then member_frozen.(0)
    else
      Storage.Stripe.create
        (Sim.create ~seed:0L ())
        ~chunk_sectors:prep.p_chunk_sectors member_frozen
  in
  {
    pos = cur.pos;
    log_base;
    member_base;
    inc =
      Option.map
        (fun inc -> Dbms.Recovery.Incremental.fork inc ~data_base:(data_base ()))
        cur.inc;
    replica = Rapilog.Ring_buffer.copy cur.replica;
    model = Hashtbl.copy cur.model;
    acked = Array.copy cur.acked;
    n_acked = cur.n_acked;
    pops_seen = cur.pops_seen;
    log_completes_seen = cur.log_completes_seen;
    pushes_seen = cur.pushes_seen;
    log_submits_seen = cur.log_submits_seen;
    last_log_lba = cur.last_log_lba;
    member_completes_seen = Array.copy cur.member_completes_seen;
    member_expected = Array.copy cur.member_expected;
  }

let sweep_fork ?jobs config =
  let preps = List.map (fun kind -> enumerate_journal config kind) config.kinds in
  (* One producer cursor per kind folds the journal exactly once, in
     candidate order, snapshotting itself at each chunk's first
     boundary; each worker then folds only its own chunk's records on
     its snapshot. Total fold work is ~2 passes regardless of the chunk
     count, where the from-scratch engine above pays the replayed
     prefix of every chunk (~half the chunk count in passes). The chunk
     partition is {!chunk_ranges} — the same as {!sweep_journal}'s —
     and each point runs the same {!reconstruct_point} over identically
     folded state, so verdicts (media digests included) are
     bit-identical to that engine at any [jobs]. Every fork is taken
     before {!Parallel.map} spawns a domain, so workers never observe
     the producer moving. *)
  let tasks =
    List.concat_map
      (fun prep ->
        let cands = prep.p_enum.e_candidates in
        let n = Array.length cands in
        let producer = cursor_create prep in
        List.map
          (fun (lo, hi) ->
            let event_index, _ = cands.(lo) in
            cursor_advance prep producer ~boundary:event_index;
            (prep, cursor_fork prep producer, lo, hi))
          (chunk_ranges n))
      preps
  in
  let chunk_results =
    Parallel.map ?jobs
      (fun (prep, cur, lo, hi) ->
        let out = ref [] in
        for i = lo to hi - 1 do
          let event_index, at_ns = prep.p_enum.e_candidates.(i) in
          out := reconstruct_point config prep cur ~event_index ~at_ns :: !out
        done;
        (prep.p_kind, lo, List.rev !out))
      tasks
  in
  assemble_chunks config preps chunk_results
