let seq_bits = 20
let max_seq = (1 lsl seq_bits) - 1
let max_tenant = (max_int lsr seq_bits) - 1

let pack ~tenant ~seq =
  if tenant < 1 || tenant > max_tenant then
    invalid_arg "Tenant.pack: tenant out of range";
  if seq < 1 || seq > max_seq then invalid_arg "Tenant.pack: seq out of range";
  (tenant lsl seq_bits) lor seq

let tenant_of txid = txid lsr seq_bits
let seq_of txid = txid land max_seq
let is_tagged txid = txid >= 1 lsl seq_bits
