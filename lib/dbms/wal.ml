open Desim

type config = { master_lba : int; log_start_lba : int; flush_after_write : bool }

let default_config = { master_lba = 0; log_start_lba = 8; flush_after_write = false }

type wal_metrics = {
  wm_sim : Sim.t;
  wm_force_write : Metrics.Histogram.t;  (* physical write of one force *)
  wm_appends : Metrics.Counter.t;
  wm_append_bytes : Metrics.Counter.t;
}

type t = {
  config : config;
  device : Storage.Block.t;
  stream : Buffer.t;  (* log bytes from [base] onwards; older bytes are
                         recycled by {!truncate} *)
  mutable base : int;  (* stream offset of [Buffer.nth stream 0] *)
  mutable flushed : Lsn.t;
  force_mutex : Resource.Mutex.t;
  mutable forces : int;
  mutable truncated_bytes : int;
  force_bytes : Stats.Sample.t;
  metrics : wal_metrics option;
}

let create sim config ~device =
  assert (config.master_lba < config.log_start_lba);
  {
    config;
    device;
    stream = Buffer.create 65536;
    base = 0;
    flushed = Lsn.zero;
    force_mutex = Resource.Mutex.create sim;
    forces = 0;
    truncated_bytes = 0;
    force_bytes = Stats.Sample.create ();
    metrics =
      Option.map
        (fun reg ->
          {
            wm_sim = sim;
            wm_force_write = Metrics.histogram reg "wal.force_write";
            wm_appends = Metrics.counter reg "wal.appends";
            wm_append_bytes = Metrics.counter reg "wal.append_bytes";
          })
        (Metrics.recording ());
  }

let create_resumed sim config ~device ~flushed ~tail =
  let t = create sim config ~device in
  let ss = (Storage.Block.info device).Storage.Block.sector_size in
  let flushed_b = Lsn.to_int flushed in
  assert (String.length tail = flushed_b mod ss);
  t.base <- flushed_b / ss * ss;
  Buffer.add_string t.stream tail;
  t.flushed <- flushed;
  t

let append t record =
  let before = Buffer.length t.stream in
  Log_record.encode_into record t.stream;
  (match t.metrics with
  | Some m ->
      Metrics.Counter.incr m.wm_appends;
      Metrics.Counter.add m.wm_append_bytes (Buffer.length t.stream - before)
  | None -> ());
  Lsn.of_int (t.base + Buffer.length t.stream)

let end_lsn t = Lsn.of_int (t.base + Buffer.length t.stream)
let flushed_lsn t = t.flushed

let sector_size t = (Storage.Block.info t.device).Storage.Block.sector_size

(* Bytes [from_b, to_b) of the stream as whole sectors, zero-padded past
   the stream end. *)
let sector_slice t ~from_b ~to_b =
  assert (from_b >= t.base);
  let stream_end = t.base + Buffer.length t.stream in
  let available = min to_b stream_end in
  let slice = Buffer.sub t.stream (from_b - t.base) (available - from_b) in
  if available = to_b then slice
  else slice ^ String.make (to_b - available) '\000'

let do_force t =
  let ss = sector_size t in
  let target_end = t.base + Buffer.length t.stream in
  let from_b = Lsn.to_int t.flushed / ss * ss in
  let to_b = (target_end + ss - 1) / ss * ss in
  (* Nothing new, but the caller insists on a physical write (an engine
     without group commit): rewrite the tail sector. *)
  let from_b = if from_b >= to_b then max t.base (to_b - ss) else from_b in
  if to_b > from_b then begin
    let data = sector_slice t ~from_b ~to_b in
    let write_started =
      match t.metrics with
      | Some m -> Metrics.Span.start m.wm_sim
      | None -> 0
    in
    Storage.Block.write t.device ~lba:(t.config.log_start_lba + (from_b / ss)) data;
    if t.config.flush_after_write then Storage.Block.flush t.device;
    match t.metrics with
    | Some m -> Metrics.Span.finish m.wm_force_write m.wm_sim write_started
    | None -> ()
  end;
  t.forces <- t.forces + 1;
  Stats.Sample.add t.force_bytes (float_of_int (to_b - from_b));
  t.flushed <- Lsn.of_int target_end

let force t target =
  assert (Lsn.(target <= end_lsn t));
  if Lsn.(t.flushed < target) then
    Resource.Mutex.with_lock t.force_mutex (fun () ->
        (* A force that completed while we waited may cover us (group
           commit); only hit the device if it did not. *)
        if Lsn.(t.flushed < target) then do_force t)

let force_exclusive t =
  Resource.Mutex.with_lock t.force_mutex (fun () -> do_force t)

let master_magic = 0x4D535452l (* "MSTR" *)

let encode_master t lsn =
  let ss = sector_size t in
  let buf = Bytes.make ss '\000' in
  Bytes.set_int32_le buf 0 master_magic;
  Bytes.set_int64_le buf 4 (Int64.of_int (Lsn.to_int lsn));
  Bytes.set_int32_le buf 12 (Crc32.digest_bytes buf ~pos:0 ~len:12);
  Bytes.unsafe_to_string buf

let write_master t lsn =
  Storage.Block.write t.device ~fua:true ~lba:t.config.master_lba (encode_master t lsn)

let read_master config ~device =
  let sector =
    Storage.Block.durable_read device ~lba:config.master_lba ~sectors:1
  in
  if String.get_int32_le sector 0 <> master_magic then None
  else if Crc32.digest sector ~pos:0 ~len:12 <> String.get_int32_le sector 12 then
    None
  else Some (Lsn.of_int (Int64.to_int (String.get_int64_le sector 4)))

let truncate t lsn =
  assert (Lsn.(lsn <= t.flushed));
  let ss = sector_size t in
  let cut = Lsn.to_int lsn / ss * ss in
  if cut > t.base then begin
    let keep = Buffer.sub t.stream (cut - t.base) (t.base + Buffer.length t.stream - cut) in
    Buffer.clear t.stream;
    Buffer.add_string t.stream keep;
    t.truncated_bytes <- t.truncated_bytes + (cut - t.base);
    t.base <- cut
  end

let base_lsn t = Lsn.of_int t.base
let truncated_bytes t = t.truncated_bytes
let forces t = t.forces
let force_bytes t = t.force_bytes
let stream_contents t = Buffer.contents t.stream
