(** Closed-loop clients.

    Each client is a guest process that repeatedly draws a transaction
    from its generator, executes it to commit, reports the
    acknowledgement, then thinks. Clients run until the guest domain dies
    or the simulation stops stepping. *)

type config = { think_time : Desim.Time.span }

val default_config : config
(** No think time: maximum pressure, as in the paper's load generator. *)

val spawn :
  vmm:Hypervisor.Vmm.t ->
  ?gate:(client:int -> unit) ->
  config ->
  count:int ->
  gen:(client:int -> Dbms.Engine.op list) ->
  engine:Dbms.Engine.t ->
  on_commit:(client:int -> Dbms.Engine.txn_result -> unit) ->
  Desim.Process.handle list
(** [on_commit] runs at the instant the client receives the commit
    acknowledgement — the harness uses it to maintain the expected-state
    model and the measurement window counters. [gate] (default none)
    runs before each transaction is drawn and may block — churn
    schedules ({!Churn}) park a left client there until it rejoins. *)
