open Desim

type config = { cpu_overhead : float; ipc : Ipc.cost; cores : int }

let native = { cpu_overhead = 0.0; ipc = Ipc.free; cores = 4 }
let default_sel4 = { cpu_overhead = 0.08; ipc = Ipc.default_sel4; cores = 4 }

type t = {
  sim : Sim.t;
  config : config;
  cores : Resource.Semaphore.t;
  guest : Domain.t;
  mutable driver_domains : Domain.t list;
  m_core_wait : Metrics.Histogram.t option;
      (* time runnable work waited for a core — CPU contention *)
}

let create sim config =
  assert (config.cpu_overhead >= 0. && config.cores > 0);
  {
    sim;
    config;
    cores = Resource.Semaphore.create sim config.cores;
    guest = Domain.create sim ~name:"guest" ~kind:Domain.Guest;
    driver_domains = [];
    m_core_wait =
      Option.map
        (fun reg -> Metrics.histogram reg "vmm.core_wait")
        (Metrics.recording ());
  }

let sim t = t.sim
let config t = t.config
let guest t = t.guest

let trusted_domain t ~name =
  let domain = Domain.create t.sim ~name ~kind:Domain.Trusted in
  t.driver_domains <- domain :: t.driver_domains;
  domain

let on_core t span =
  let wait_started =
    match t.m_core_wait with Some _ -> Metrics.Span.start t.sim | None -> 0
  in
  Resource.Semaphore.acquire t.cores;
  (match t.m_core_wait with
  | Some h -> Metrics.Span.finish h t.sim wait_started
  | None -> ());
  Fun.protect ~finally:(fun () -> Resource.Semaphore.release t.cores)
  @@ fun () -> Process.sleep span

let exec t span =
  on_core t (Time.scale_span span (1.0 +. t.config.cpu_overhead))

let exec_trusted t span = on_core t span

let spawn_guest t ?name body = Domain.spawn t.guest ?name body
let crash_guest t = Domain.crash t.guest
let guest_alive t = not (Domain.is_faulted t.guest)

let attach_virtio_disk t ?queue_depth backend =
  let backend_domain = trusted_domain t ~name:("drv-" ^ backend.Virtio_blk.be_info.Storage.Block.model) in
  Virtio_blk.create t.sim ~ipc:t.config.ipc ~backend_domain ?queue_depth backend
