examples/crash_and_restart.mli:
