lib/desim/resource.ml: Fun Process Queue Sim
