open Desim
open Dbms

type config = {
  warehouses : int;
  items_per_warehouse : int;
  customers_per_district : int;
  value_bytes : int;
}

let default_config =
  { warehouses = 2; items_per_warehouse = 200; customers_per_district = 30; value_bytes = 96 }

type kind = New_order | Payment | Order_status | Delivery | Stock_level

let kind_name = function
  | New_order -> "new-order"
  | Payment -> "payment"
  | Order_status -> "order-status"
  | Delivery -> "delivery"
  | Stock_level -> "stock-level"

let districts_per_warehouse = 10

(* Key-space layout: disjoint bases per table. *)
let warehouse_key w = w
let district_key w d = 1_000_000 + (w * districts_per_warehouse) + d

let customer_key config w d c =
  2_000_000 + ((((w * districts_per_warehouse) + d) * config.customers_per_district) + c)

let stock_key config w i = 10_000_000 + (w * config.items_per_warehouse) + i
let order_key seq = 20_000_000 + seq
let order_line_key seq = 30_000_000 + seq

type t = {
  config : config;
  rng : Rng.t;
  mutable order_seq : int;
  mutable line_seq : int;
  counts : (kind, int) Hashtbl.t;
}

let create rng config =
  assert (config.warehouses > 0 && config.items_per_warehouse > 0);
  assert (config.customers_per_district > 0 && config.value_bytes > 0);
  { config; rng = Rng.split rng; order_seq = 0; line_seq = 0; counts = Hashtbl.create 8 }

let config t = t.config

let value t tag = Value_gen.make t.rng ~tag ~len:t.config.value_bytes

let initial_rows t =
  let c = t.config in
  let rows = ref [] in
  let add key tag = rows := (key, value t tag) :: !rows in
  for w = 0 to c.warehouses - 1 do
    add (warehouse_key w) (Printf.sprintf "wh:%d:" w);
    for d = 0 to districts_per_warehouse - 1 do
      add (district_key w d) (Printf.sprintf "di:%d.%d:" w d);
      for cust = 0 to c.customers_per_district - 1 do
        add (customer_key c w d cust) (Printf.sprintf "cu:%d.%d.%d:" w d cust)
      done
    done;
    for i = 0 to c.items_per_warehouse - 1 do
      add (stock_key c w i) (Printf.sprintf "st:%d.%d:" w i)
    done
  done;
  List.rev !rows

let pick_warehouse t = Rng.int t.rng t.config.warehouses
let pick_district t = Rng.int t.rng districts_per_warehouse
let pick_customer t = Rng.int t.rng t.config.customers_per_district
let pick_item t = Rng.int t.rng t.config.items_per_warehouse

let new_order t =
  let c = t.config in
  let w = pick_warehouse t and d = pick_district t in
  let cust = pick_customer t in
  let lines = 5 + Rng.int t.rng 11 in
  let ops = ref [] in
  let push op = ops := op :: !ops in
  push (Engine.Get { key = customer_key c w d cust });
  push (Engine.Get { key = district_key w d });
  push (Engine.Put { key = district_key w d; value = value t (Printf.sprintf "di:%d.%d:" w d) });
  t.order_seq <- t.order_seq + 1;
  push (Engine.Put { key = order_key t.order_seq; value = value t "or:" });
  for _ = 1 to lines do
    let item = pick_item t in
    push (Engine.Get { key = stock_key c w item });
    push (Engine.Put { key = stock_key c w item; value = value t "st:" });
    t.line_seq <- t.line_seq + 1;
    push (Engine.Put { key = order_line_key t.line_seq; value = value t "ol:" })
  done;
  List.rev !ops

let payment t =
  let c = t.config in
  let w = pick_warehouse t and d = pick_district t in
  let cust = pick_customer t in
  [
    Engine.Put { key = warehouse_key w; value = value t (Printf.sprintf "wh:%d:" w) };
    Engine.Put { key = district_key w d; value = value t (Printf.sprintf "di:%d.%d:" w d) };
    Engine.Get { key = customer_key c w d cust };
    Engine.Put { key = customer_key c w d cust; value = value t "cu:" };
  ]

let order_status t =
  let c = t.config in
  let w = pick_warehouse t and d = pick_district t in
  [
    Engine.Get { key = customer_key c w d (pick_customer t) };
    Engine.Get { key = district_key w d };
    Engine.Get { key = stock_key c w (pick_item t) };
  ]

let delivery t =
  let c = t.config in
  let w = pick_warehouse t in
  let rec updates d acc =
    if d >= districts_per_warehouse then acc
    else
      let cust = pick_customer t in
      updates (d + 1)
        (Engine.Put { key = customer_key c w d cust; value = value t "cu:" } :: acc)
  in
  updates 0 []

let stock_level t =
  let c = t.config in
  let w = pick_warehouse t in
  List.init 5 (fun _ -> Engine.Get { key = stock_key c w (pick_item t) })

let sample_kind t =
  let roll = Rng.int t.rng 100 in
  if roll < 45 then New_order
  else if roll < 88 then Payment
  else if roll < 92 then Order_status
  else if roll < 96 then Delivery
  else Stock_level

let next t =
  let kind = sample_kind t in
  let count = Option.value (Hashtbl.find_opt t.counts kind) ~default:0 in
  Hashtbl.replace t.counts kind (count + 1);
  let ops =
    match kind with
    | New_order -> new_order t
    | Payment -> payment t
    | Order_status -> order_status t
    | Delivery -> delivery t
    | Stock_level -> stock_level t
  in
  (kind, ops)

let mix_counts t =
  List.filter_map
    (fun kind ->
      match Hashtbl.find_opt t.counts kind with
      | Some n -> Some (kind, n)
      | None -> None)
    [ New_order; Payment; Order_status; Delivery; Stock_level ]
