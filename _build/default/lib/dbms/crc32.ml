let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let update crc byte =
  let table = Lazy.force table in
  let index = Int32.to_int (Int32.logand (Int32.logxor crc (Int32.of_int byte)) 0xFFl) in
  Int32.logxor table.(index) (Int32.shift_right_logical crc 8)

let digest_gen get s ~pos ~len =
  assert (pos >= 0 && len >= 0);
  let crc = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    crc := update !crc (get s i)
  done;
  Int32.logxor !crc 0xFFFFFFFFl

let digest s ~pos ~len = digest_gen (fun s i -> Char.code s.[i]) s ~pos ~len
let digest_string s = digest s ~pos:0 ~len:(String.length s)

let digest_bytes b ~pos ~len =
  digest_gen (fun b i -> Char.code (Bytes.get b i)) b ~pos ~len
