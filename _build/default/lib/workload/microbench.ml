open Desim

type config = {
  keys : int;
  value_bytes : int;
  zipf_theta : float;
  updates_per_txn : int;
  delete_fraction : float;
}

let default_config =
  {
    keys = 10_000;
    value_bytes = 128;
    zipf_theta = 0.;
    updates_per_txn = 1;
    delete_fraction = 0.;
  }

type t = { config : config; rng : Rng.t; dist : Key_dist.t }

let create rng config =
  assert (config.keys > 0 && config.value_bytes > 0 && config.updates_per_txn > 0);
  let dist =
    if config.zipf_theta = 0. then Key_dist.uniform ~n:config.keys
    else Key_dist.zipf ~n:config.keys ~theta:config.zipf_theta
  in
  { config; rng = Rng.split rng; dist }

let config t = t.config

let initial_rows t =
  List.init t.config.keys (fun key ->
      (key, Value_gen.make t.rng ~tag:(Printf.sprintf "k%d:" key) ~len:t.config.value_bytes))

let next t =
  List.init t.config.updates_per_txn (fun _ ->
      let key = Key_dist.sample t.rng t.dist in
      if t.config.delete_fraction > 0. && Rng.float t.rng < t.config.delete_fraction
      then Dbms.Engine.Delete { key }
      else
        Dbms.Engine.Put
          { key; value = Value_gen.make t.rng ~tag:(Printf.sprintf "k%d:" key) ~len:t.config.value_bytes })
