(* The full lifecycle, via the public API: run a RapiLog database, kill
   it mid-transaction, restart from durable media, keep working — and
   verify at the end that both incarnations' commits survived.

   Run with: dune exec examples/crash_and_restart.exe *)

open Desim

let wal_config = Dbms.Wal.default_config
let pool_config = Dbms.Buffer_pool.default_config

let () =
  let sim = Sim.create ~seed:11L () in
  let vmm = Hypervisor.Vmm.create sim Hypervisor.Vmm.default_sel4 in
  let log_disk = Storage.Hdd.create sim Storage.Hdd.default_7200rpm in
  let log_path, logger = Rapilog.attach ~vmm ~device:log_disk () in
  let data_disk = Storage.Ssd.create sim Storage.Ssd.default in

  (* ---- Incarnation 1 -------------------------------------------------- *)
  let wal = Dbms.Wal.create sim wal_config ~device:log_path in
  let pool =
    Dbms.Buffer_pool.create sim pool_config ~device:data_disk
      ~wal_force:(fun ~page:_ lsn -> Dbms.Wal.force wal lsn)
  in
  let engine1 =
    Dbms.Engine.create ~vmm ~profile:Dbms.Engine_profile.postgres_like ~wal ~pool ()
  in
  let epoch1_acks = ref 0 in
  ignore
    (Hypervisor.Vmm.spawn_guest vmm ~name:"epoch1" (fun () ->
         (* This loop never finishes: the guest dies under it. *)
         let i = ref 0 in
         while true do
           incr i;
           ignore
             (Dbms.Engine.exec engine1
                [ Dbms.Engine.Put { key = !i; value = Printf.sprintf "gen1:%d" !i } ]);
           incr epoch1_acks
         done));
  Sim.schedule_after sim (Time.ms 50) (fun () ->
      Printf.printf "t=50ms: guest OS dies (%d commits acknowledged)\n%!" !epoch1_acks;
      Hypervisor.Vmm.crash_guest vmm;
      (* The trusted logger is unaffected; let it finish draining, then
         bring up the next incarnation. *)
      ignore
        (Process.spawn sim ~name:"epoch2" (fun () ->
             Rapilog.Trusted_logger.quiesce logger;
             let engine2, recovery =
               Dbms.Restart.restart ~vmm ~profile:Dbms.Engine_profile.postgres_like
                 ~log_device:log_path ~data_device:data_disk ~wal_config
                 ~pool_config ()
             in
             Printf.printf
               "restart: recovered %d committed txns, %d losers neutralised\n%!"
               (List.length recovery.Dbms.Recovery.committed)
               (List.length recovery.Dbms.Recovery.losers);
             (* ---- Incarnation 2 -------------------------------------- *)
             for i = 1 to 100 do
               ignore
                 (Dbms.Engine.exec engine2
                    [
                      Dbms.Engine.Put
                        { key = 100_000 + i; value = Printf.sprintf "gen2:%d" i };
                    ])
             done;
             ignore
               (Dbms.Checkpoint.run_once ~wal:(Dbms.Engine.wal engine2)
                  ~pool:(Dbms.Engine.pool engine2));
             Printf.printf "epoch 2 committed 100 more and checkpointed\n%!")));
  Sim.run sim;

  (* ---- Post-mortem: what does the media actually hold? ----------------- *)
  let recovery =
    Dbms.Recovery.run ~log_device:log_disk ~data_device:data_disk ~wal_config
      ~pool_config
  in
  Printf.printf "\nfinal recovery from raw media:\n";
  Printf.printf "  committed transactions : %d (>= %d from epoch 1 + 100 from epoch 2)\n"
    (List.length recovery.Dbms.Recovery.committed)
    !epoch1_acks;
  Printf.printf "  key 1                  : %s\n"
    (Option.value (Hashtbl.find_opt recovery.Dbms.Recovery.store 1) ~default:"<missing>");
  Printf.printf "  key 100100             : %s\n"
    (Option.value
       (Hashtbl.find_opt recovery.Dbms.Recovery.store 100_100)
       ~default:"<missing>");
  assert (List.length recovery.Dbms.Recovery.committed >= !epoch1_acks + 100);
  assert (Hashtbl.find_opt recovery.Dbms.Recovery.store 1 = Some "gen1:1");
  assert (Hashtbl.find_opt recovery.Dbms.Recovery.store 100_100 = Some "gen2:100");
  print_endline "\nboth incarnations' commits survived. durability held."
