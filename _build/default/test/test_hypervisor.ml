(* Tests for protection domains, IPC costs, the paravirtual block path
   and the VMM — in particular the fault-containment property the whole
   RapiLog argument rests on. *)

open Desim
open Testu

(* -- Domain ----------------------------------------------------------- *)

let domain_spawn_and_name () =
  let sim = Sim.create () in
  let domain = Hypervisor.Domain.create sim ~name:"guest0" ~kind:Hypervisor.Domain.Guest in
  let seen = ref "" in
  ignore
    (Hypervisor.Domain.spawn domain ~name:"worker" (fun () ->
         seen := Process.name (Process.self ())));
  Sim.run sim;
  Alcotest.(check string) "qualified name" "guest0/worker" !seen;
  Alcotest.(check string) "domain name" "guest0" (Hypervisor.Domain.name domain)

let domain_crash_cancels_own_processes () =
  let sim = Sim.create () in
  let domain = Hypervisor.Domain.create sim ~name:"g" ~kind:Hypervisor.Domain.Guest in
  let progressed = ref 0 in
  for _ = 1 to 3 do
    ignore
      (Hypervisor.Domain.spawn domain (fun () ->
           Process.sleep (Time.ms 10);
           incr progressed))
  done;
  Sim.schedule_after sim (Time.ms 1) (fun () -> Hypervisor.Domain.crash domain);
  Sim.run sim;
  Alcotest.(check int) "no process survived" 0 !progressed;
  Alcotest.(check bool) "faulted" true (Hypervisor.Domain.is_faulted domain)

let domain_crash_contained () =
  (* The property verification buys: a guest crash cannot touch another
     domain's processes. *)
  let sim = Sim.create () in
  let guest = Hypervisor.Domain.create sim ~name:"guest" ~kind:Hypervisor.Domain.Guest in
  let trusted = Hypervisor.Domain.create sim ~name:"logger" ~kind:Hypervisor.Domain.Trusted in
  let trusted_done = ref false and guest_done = ref false in
  ignore
    (Hypervisor.Domain.spawn guest (fun () ->
         Process.sleep (Time.ms 10);
         guest_done := true));
  ignore
    (Hypervisor.Domain.spawn trusted (fun () ->
         Process.sleep (Time.ms 10);
         trusted_done := true));
  Sim.schedule_after sim (Time.ms 1) (fun () -> Hypervisor.Domain.crash guest);
  Sim.run sim;
  Alcotest.(check bool) "guest died" false !guest_done;
  Alcotest.(check bool) "trusted domain untouched" true !trusted_done;
  Alcotest.(check bool) "trusted not faulted" false
    (Hypervisor.Domain.is_faulted trusted)

let domain_spawn_after_crash_is_dead () =
  let sim = Sim.create () in
  let domain = Hypervisor.Domain.create sim ~name:"g" ~kind:Hypervisor.Domain.Guest in
  Hypervisor.Domain.crash domain;
  let ran = ref false in
  let h = Hypervisor.Domain.spawn domain (fun () -> ran := true) in
  Sim.run sim;
  Alcotest.(check bool) "refused" false !ran;
  Alcotest.(check bool) "handle dead" false (Process.is_alive h)

let domain_live_process_count () =
  let sim = Sim.create () in
  let domain = Hypervisor.Domain.create sim ~name:"g" ~kind:Hypervisor.Domain.Guest in
  ignore (Hypervisor.Domain.spawn domain (fun () -> Process.sleep (Time.ms 10)));
  ignore (Hypervisor.Domain.spawn domain (fun () -> ()));
  Sim.schedule_after sim (Time.ms 1) (fun () ->
      Alcotest.(check int) "one still alive" 1
        (Hypervisor.Domain.live_processes domain));
  Sim.run sim;
  Alcotest.(check int) "none at the end" 0 (Hypervisor.Domain.live_processes domain)

(* -- Ipc --------------------------------------------------------------- *)

let ipc_costs_paid () =
  let elapsed =
    run_in_sim (fun sim ->
        let before = Sim.now sim in
        Hypervisor.Ipc.pay_submit Hypervisor.Ipc.default_sel4;
        Hypervisor.Ipc.pay_complete Hypervisor.Ipc.default_sel4;
        Time.diff (Sim.now sim) before)
  in
  check_span "round trip" (Hypervisor.Ipc.round_trip Hypervisor.Ipc.default_sel4) elapsed

let ipc_free_is_zero () =
  check_span "free" Time.zero_span (Hypervisor.Ipc.round_trip Hypervisor.Ipc.free);
  let elapsed =
    run_in_sim (fun sim ->
        let before = Sim.now sim in
        Hypervisor.Ipc.pay_submit Hypervisor.Ipc.free;
        Time.diff (Sim.now sim) before)
  in
  check_span "no sleep for free ipc" Time.zero_span elapsed

(* -- Virtio ------------------------------------------------------------ *)

(* SSD backend: service time is phase-free, so timing comparisons are
   exact (the disk's rotational position would otherwise dominate). *)
let make_virtio ?(ipc = Hypervisor.Ipc.default_sel4) sim =
  let raw = Storage.Ssd.create sim Storage.Ssd.default in
  let backend_domain =
    Hypervisor.Domain.create sim ~name:"drv" ~kind:Hypervisor.Domain.Trusted
  in
  let frontend =
    Hypervisor.Virtio_blk.create sim ~ipc ~backend_domain
      (Hypervisor.Virtio_blk.backend_of_block raw)
  in
  (frontend, raw)

let virtio_passthrough () =
  run_in_sim (fun sim ->
      let frontend, raw = make_virtio sim in
      Storage.Block.write frontend ~lba:7 (String.make 1024 'v');
      Alcotest.(check string) "backend device has the data" (String.make 1024 'v')
        (Storage.Block.durable_read raw ~lba:7 ~sectors:2);
      Alcotest.(check string) "frontend reads it back" (String.make 1024 'v')
        (Storage.Block.read frontend ~lba:7 ~sectors:2))

let virtio_adds_ipc_cost () =
  let timed ipc =
    run_in_sim (fun sim ->
        let frontend, _ = make_virtio ~ipc sim in
        let before = Sim.now sim in
        Storage.Block.write frontend ~lba:0 (String.make 512 'x');
        Time.span_to_ns (Time.diff (Sim.now sim) before))
  in
  let with_ipc = timed Hypervisor.Ipc.default_sel4 in
  let without = timed Hypervisor.Ipc.free in
  Alcotest.(check int) "exactly the round trip dearer"
    (Time.span_to_ns (Hypervisor.Ipc.round_trip Hypervisor.Ipc.default_sel4))
    (with_ipc - without)

let virtio_flush_passes_through () =
  run_in_sim (fun sim ->
      let frontend, raw = make_virtio sim in
      Storage.Block.flush frontend;
      Alcotest.(check int) "backend flushed" 1
        (Storage.Disk_stats.flushes (Storage.Block.stats raw)))

let virtio_queued_request_survives_guest_crash () =
  (* A request already handed to the backend completes even if the guest
     dies meanwhile — the queue lives outside the guest. This is the
     structural fact RapiLog exploits. *)
  let sim = Sim.create () in
  let frontend, raw = make_virtio sim in
  let guest = Hypervisor.Domain.create sim ~name:"guest" ~kind:Hypervisor.Domain.Guest in
  let acked = ref false in
  ignore
    (Hypervisor.Domain.spawn guest (fun () ->
         Storage.Block.write frontend ~lba:0 (String.make 512 'g');
         acked := true));
  (* Crash the guest while the write is in flight at the device: past the
     12us virtio submission, inside the ~320us SSD program. *)
  Sim.schedule_after sim (Time.us 100) (fun () -> Hypervisor.Domain.crash guest);
  Sim.run sim;
  Alcotest.(check bool) "guest never saw the ack" false !acked;
  Alcotest.(check string) "data still reached the device" (String.make 512 'g')
    (Storage.Block.durable_read raw ~lba:0 ~sectors:1)

let virtio_concurrent_requests () =
  let sim = Sim.create () in
  let frontend, _ = make_virtio sim in
  let completed = ref 0 in
  for i = 0 to 3 do
    ignore
      (Process.spawn sim (fun () ->
           Storage.Block.write frontend ~lba:(i * 1000) (String.make 512 'c');
           incr completed))
  done;
  Sim.run sim;
  Alcotest.(check int) "all completed" 4 !completed

let virtio_model_name () =
  run_in_sim (fun sim ->
      let frontend, raw = make_virtio sim in
      Alcotest.(check string) "prefixed"
        ("virtio:" ^ (Storage.Block.info raw).Storage.Block.model)
        (Storage.Block.info frontend).Storage.Block.model)

(* -- Vmm ---------------------------------------------------------------- *)

let vmm_exec_inflates_cpu () =
  let timed config =
    run_in_sim (fun sim ->
        let vmm = Hypervisor.Vmm.create sim config in
        let before = Sim.now sim in
        Hypervisor.Vmm.exec vmm (Time.ms 1);
        Time.span_to_ns (Time.diff (Sim.now sim) before))
  in
  Alcotest.(check int) "native unchanged" 1_000_000 (timed Hypervisor.Vmm.native);
  Alcotest.(check int) "8% overhead" 1_080_000 (timed Hypervisor.Vmm.default_sel4)

let vmm_trusted_exec_not_inflated () =
  let elapsed =
    run_in_sim (fun sim ->
        let vmm = Hypervisor.Vmm.create sim Hypervisor.Vmm.default_sel4 in
        let before = Sim.now sim in
        Hypervisor.Vmm.exec_trusted vmm (Time.ms 1);
        Time.span_to_ns (Time.diff (Sim.now sim) before))
  in
  Alcotest.(check int) "native speed" 1_000_000 elapsed

let vmm_cores_limit_parallelism () =
  let finish_with cores jobs =
    let sim = Sim.create () in
    let vmm = Hypervisor.Vmm.create sim { Hypervisor.Vmm.native with cores } in
    let latest = ref Time.zero in
    for _ = 1 to jobs do
      ignore
        (Process.spawn sim (fun () ->
             Hypervisor.Vmm.exec vmm (Time.ms 1);
             latest := Time.max !latest (Sim.now sim)))
    done;
    Sim.run sim;
    Time.to_ns !latest
  in
  Alcotest.(check int) "8 jobs on 1 core take 8ms" 8_000_000 (finish_with 1 8);
  Alcotest.(check int) "8 jobs on 4 cores take 2ms" 2_000_000 (finish_with 4 8)

let vmm_crash_guest_containment () =
  let sim = Sim.create () in
  let vmm = Hypervisor.Vmm.create sim Hypervisor.Vmm.default_sel4 in
  let trusted = Hypervisor.Vmm.trusted_domain vmm ~name:"svc" in
  let guest_ran = ref false and trusted_ran = ref false in
  ignore
    (Hypervisor.Vmm.spawn_guest vmm (fun () ->
         Process.sleep (Time.ms 5);
         guest_ran := true));
  ignore
    (Hypervisor.Domain.spawn trusted (fun () ->
         Process.sleep (Time.ms 5);
         trusted_ran := true));
  Sim.schedule_after sim (Time.ms 1) (fun () -> Hypervisor.Vmm.crash_guest vmm);
  Sim.run sim;
  Alcotest.(check bool) "guest work lost" false !guest_ran;
  Alcotest.(check bool) "trusted work survived" true !trusted_ran;
  Alcotest.(check bool) "guest_alive reports dead" false (Hypervisor.Vmm.guest_alive vmm)

let vmm_attach_virtio_disk_end_to_end () =
  run_in_sim (fun sim ->
      let vmm = Hypervisor.Vmm.create sim Hypervisor.Vmm.default_sel4 in
      let raw = Storage.Ssd.create sim Storage.Ssd.default in
      let disk =
        Hypervisor.Vmm.attach_virtio_disk vmm
          (Hypervisor.Virtio_blk.backend_of_block raw)
      in
      Storage.Block.write disk ~lba:0 (String.make 512 'e');
      Alcotest.(check string) "roundtrip through the stack" (String.make 512 'e')
        (Storage.Block.read disk ~lba:0 ~sectors:1))

let suites =
  [
    ( "hypervisor.domain",
      [
        case "spawn and naming" domain_spawn_and_name;
        case "crash cancels own processes" domain_crash_cancels_own_processes;
        case "crash is contained to the domain" domain_crash_contained;
        case "spawn after crash refused" domain_spawn_after_crash_is_dead;
        case "live process count" domain_live_process_count;
      ] );
    ( "hypervisor.ipc",
      [ case "costs are paid in time" ipc_costs_paid; case "free is free" ipc_free_is_zero ] );
    ( "hypervisor.virtio",
      [
        case "write/read passthrough" virtio_passthrough;
        case "adds exactly the IPC round trip" virtio_adds_ipc_cost;
        case "flush passes through" virtio_flush_passes_through;
        case "queued request survives guest crash"
          virtio_queued_request_survives_guest_crash;
        case "concurrent requests" virtio_concurrent_requests;
        case "model name prefixed" virtio_model_name;
      ] );
    ( "hypervisor.vmm",
      [
        case "exec applies virtualisation overhead" vmm_exec_inflates_cpu;
        case "trusted exec is not inflated" vmm_trusted_exec_not_inflated;
        case "cores bound parallelism" vmm_cores_limit_parallelism;
        case "guest crash is contained" vmm_crash_guest_containment;
        case "attach_virtio_disk end to end" vmm_attach_virtio_disk_end_to_end;
      ] );
  ]
