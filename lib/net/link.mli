(** A simulated point-to-point network link.

    A link is unidirectional: messages enter at {!send} and leave
    through the [deliver] callback given at {!create}. Each message is
    delayed by a per-message propagation latency drawn from the link's
    latency distribution plus a serialisation delay from its bandwidth,
    and delivery is {b FIFO per link}: a message never overtakes an
    earlier one on the same link, however the latency draws land
    (reordering across {e different} links is the intended — and only —
    reordering in the model). A message is delivered at most once; the
    fault model can drop it ({!config.drop_probability}, or a
    {!partition} followed by {!sever}) but never duplicate it.

    Determinism: the link draws all randomness from a private
    {!Desim.Rng} split off the simulation rng at {!create} time, and the
    pump that delivers ready messages is a single outstanding simulation
    event — so the delivery schedule is a pure function of the seed and
    the send sequence, bit-identical across {!Harness.Parallel} jobs and
    with {!Desim.Metrics} recording on or off.

    The hot path is allocation-free: queued messages live in flat
    preallocated ring arrays (grown geometrically, amortised), the pump
    closure is preallocated, and a zero drop probability never touches
    the rng. [perf.exe --check] gates this. *)

open Desim

type latency =
  | Constant of Time.span
  | Uniform of Time.span * Time.span
      (** Half-open [[lo, hi)], like {!Power.Failure_injector}
          intervals; requires [lo <= hi], degenerating to [lo] when
          equal. *)
  | Exponential of Time.span  (** Mean of the exponential draw. *)

type config = {
  latency : latency;  (** one-way propagation delay per message *)
  bandwidth : float;
      (** serialisation rate in bytes/s; [0.] or [infinity] disables the
          serialisation delay *)
  drop_probability : float;
      (** per-message loss, sampled at {!send}; [0.] never consults the
          rng *)
}

val default : config
(** 25 µs constant one-way latency (a 50 µs RTT datacenter hop), 10 GbE
    serialisation (1.25 GB/s), no drops. *)

type 'a t

val create :
  Sim.t -> ?name:string -> config -> dummy:'a -> deliver:('a -> unit) -> 'a t
(** [create sim config ~dummy ~deliver] builds a link delivering into
    [deliver] (called from plain event context — it must not block;
    spawn or signal instead). [dummy] fills empty queue slots so the
    payload ring can be a flat array. [name] labels trace output.

    When {!Desim.Metrics} recording is on, per-message delay (send →
    deliver, µs) is observed into the ["net.link_delay"] histogram. *)

val send : 'a t -> ?bytes:int -> 'a -> unit
(** Enqueue a message; callable from any context, returns immediately.
    [bytes] (default 0) is the on-wire size charged against the link
    bandwidth. Messages may be dropped per [drop_probability], or
    silently discarded after {!sever}. *)

val partition : _ t -> unit
(** Stop delivering. In-flight and newly-sent messages queue up — the
    network holds them — until {!heal} or {!sever}. Idempotent. *)

val heal : _ t -> unit
(** Resume delivery. The held backlog flushes immediately (in FIFO
    order) where its delivery times already passed. Idempotent. *)

val partitioned : _ t -> bool

val sever : _ t -> unit
(** The peer is gone: discard everything queued and drop all future
    sends. Used for machine loss. Irreversible.

    Loss wins over partition: severing a link that is currently
    partitioned drops the partition state along with the held backlog —
    {!partitioned} reports [false] afterwards and a late {!heal} is a
    no-op. A machine loss scheduled inside an active outage therefore
    has one defined outcome: the dead node's links are severed, full
    stop. *)

(** {1 Counters} *)

val name : _ t -> string

val sent : _ t -> int
(** Messages accepted by {!send} (excluding post-{!sever} discards). *)

val delivered : _ t -> int

val dropped : _ t -> int
(** Losses: [drop_probability] drops plus messages discarded by
    {!sever}. *)

val in_flight : _ t -> int
(** Messages queued on the wire right now. *)
