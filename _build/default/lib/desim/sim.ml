type t = {
  mutable clock : Time.t;
  queue : (unit -> unit) Event_queue.t;
  rng : Rng.t;
  seed : int64;
}

let create ?(seed = 1L) () =
  { clock = Time.zero; queue = Event_queue.create (); rng = Rng.create seed; seed }

let now t = t.clock
let rng t = t.rng
let seed t = t.seed

let schedule_at t time f =
  assert (Time.(t.clock <= time));
  Event_queue.add t.queue ~time f

let schedule_after t d f =
  assert (Time.compare_span d Time.zero_span >= 0);
  Event_queue.add t.queue ~time:(Time.add t.clock d) f

let schedule_now t f = Event_queue.add t.queue ~time:t.clock f

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
      t.clock <- time;
      f ();
      true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some limit ->
      let continue = ref true in
      while !continue do
        match Event_queue.peek_time t.queue with
        | Some time when Time.(time <= limit) -> ignore (step t)
        | Some _ | None -> continue := false
      done;
      if Time.(t.clock < limit) then t.clock <- limit

let pending t = Event_queue.length t.queue
