lib/hypervisor/vmm.mli: Desim Domain Ipc Storage Virtio_blk
