open Desim

type kind = Trusted | Guest

type t = {
  sim : Sim.t;
  dname : string;
  kind : kind;
  mutable processes : Process.handle list;
  mutable faulted : bool;
}

let create sim ~name ~kind = { sim; dname = name; kind; processes = []; faulted = false }

let name t = t.dname
let kind t = t.kind

let spawn t ?name body =
  let pname =
    match name with Some n -> t.dname ^ "/" ^ n | None -> t.dname ^ "/proc"
  in
  if t.faulted then begin
    (* Return a handle that was never scheduled. *)
    let h = Process.spawn t.sim ~name:pname (fun () -> ()) in
    Process.cancel h;
    h
  end
  else begin
    let h = Process.spawn t.sim ~name:pname body in
    t.processes <- h :: t.processes;
    h
  end

let crash t =
  if not t.faulted then begin
    t.faulted <- true;
    List.iter Process.cancel t.processes
  end

let is_faulted t = t.faulted
let live_processes t = List.length (List.filter Process.is_alive t.processes)
