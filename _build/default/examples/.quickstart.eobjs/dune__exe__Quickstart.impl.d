examples/quickstart.ml: Audit Dbms Desim Experiment Harness List Printf Rapilog Scenario
