(* tab4-recovery: crash-recovery correctness and work. Random crash
   points under the TPC-C-lite load; recovery must restore exactly the
   acknowledged-commit state, detecting any torn log tail via record
   CRCs, and the checkpoint must bound the redo pass. *)

open Desim
open Harness
open Bench_support

let tab4 =
  {
    id = "tab4-recovery";
    title = "Tab 4: recovery correctness and work under random crashes";
    description =
      "random crash points: redo/undo work done and exactness of the recovered store";
    run =
      (fun ~quick ->
        Report.section "Tab 4: recovery audit (random guest crashes, rapilog mode)";
        let trials = failure_trials ~quick in
        let exact = ref 0 in
        let lost = ref 0 in
        let records = Stats.Summary.create () in
        let redo = Stats.Summary.create () in
        let undo = Stats.Summary.create () in
        let losers = Stats.Summary.create () in
        let specs =
          List.init trials (fun i ->
              let trial = i + 1 in
              ( {
                  (base_config ~quick) with
                  Scenario.mode = Scenario.Rapilog;
                  seed = Int64.of_int (5000 + trial);
                },
                Time.ms (50 + (113 * trial mod 500)) ))
        in
        List.iter
          (fun (r : Experiment.failure_result) ->
            if r.Experiment.audit.Audit.state_exact then incr exact;
            lost :=
              !lost
              + List.length r.Experiment.audit.Audit.durability.Rapilog.Durability.lost;
            Stats.Summary.add records (float_of_int r.Experiment.durable_records);
            Stats.Summary.add redo (float_of_int r.Experiment.redo_applied);
            Stats.Summary.add undo (float_of_int r.Experiment.undo_applied);
            Stats.Summary.add losers (float_of_int r.Experiment.losers))
          (Experiment.run_failure_batch ~kind:Experiment.Os_crash specs);
        Report.table
          ~columns:[ "metric"; "value" ]
          ~rows:
            [
              [ "trials"; string_of_int trials ];
              [ "state-exact recoveries"; Printf.sprintf "%d/%d" !exact trials ];
              [ "acknowledged commits lost"; string_of_int !lost ];
              [ "durable log records (mean)"; Report.float_cell (Stats.Summary.mean records) ];
              [ "redo applied (mean)"; Report.float_cell (Stats.Summary.mean redo) ];
              [ "undo applied (mean)"; Report.float_cell (Stats.Summary.mean undo) ];
              [ "loser txns per crash (mean)"; Report.float_cell (Stats.Summary.mean losers) ];
            ];
        Report.note "shape target: state-exact = trials, zero acknowledged loss";
        (* Checkpoint ablation: redo work with and without checkpoints.
           Uses a bounded working set on flash so checkpoints actually
           complete inside the run — under the insert-heavy TPC-C on
           spinning data disks a full-pool flush outlives the experiment,
           which is itself a finding (see the note). *)
        Report.subsection "checkpoint ablation (redo records at crash, single seed)";
        let redo_with interval =
          let config =
            {
              (base_config ~quick) with
              Scenario.mode = Scenario.Rapilog;
              seed = 77L;
              device = Scenario.Flash Storage.Ssd.default;
              workload =
                Scenario.Micro
                  { Workload.Microbench.default_config with Workload.Microbench.keys = 2000 };
              checkpoint_interval = interval;
            }
          in
          let r =
            Experiment.run_failure config ~kind:Experiment.Os_crash ~after:(Time.ms 400)
          in
          (r.Experiment.redo_applied, r.Experiment.durable_records)
        in
        let redo_ckpt, recs_ckpt = redo_with (Some (Time.ms 100)) in
        let redo_none, recs_none = redo_with None in
        Report.table
          ~columns:[ "checkpointing"; "durable records"; "redo applied" ]
          ~rows:
            [
              [ "every 100ms"; string_of_int recs_ckpt; string_of_int redo_ckpt ];
              [ "disabled"; string_of_int recs_none; string_of_int redo_none ];
            ];
        Report.note
          "shape target: with checkpoints, redo covers only the records since the last";
        Report.note
          "completed one; without them it replays the whole log. (On the insert-heavy";
        Report.note
          "TPC-C over spinning data disks a checkpoint cannot finish flushing inside";
        Report.note
          "the run, so there the two columns converge - checkpoints bound recovery";
        Report.note "only as fast as the data volume absorbs page writes.)");
  }

let experiments = [ tab4 ]
