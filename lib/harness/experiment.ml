open Desim

type steady_result = {
  mode : Scenario.mode;
  clients : int;
  committed_in_window : int;
  throughput : float;
  latency_mean_us : float;
  latency_p50_us : float;
  latency_p95_us : float;
  latency_p99_us : float;
  physical_log_writes : int;
  physical_log_sectors : int;
  wal_forces : int;
  force_mean_bytes : float;
  log_bytes_per_txn : float;
  logger_stats : logger_stats option;
  total_committed : int;
}

and logger_stats = {
  acked_writes : int;
  drain_writes : int;
  max_buffered : int;
  stalls : int;
}

type failure_kind = Power_cut | Os_crash

let failure_name = function Power_cut -> "power-cut" | Os_crash -> "os-crash"

type failure_result = {
  kind : failure_kind;
  fmode : Scenario.mode;
  acked : int;
  audit : Audit.t;
  cut_at : Time.t;
  durable_records : int;
  redo_applied : int;
  undo_applied : int;
  losers : int;
  buffered_at_cut : int option;
  holdup_window : Time.span option;
  invariant_violations : int;
      (* from the runtime monitor attached to the trusted logger; 0 when
         no logger is present *)
}

(* The client-side tracking, loader and closed-loop clients live in
   {!Driver}, shared with the crash-surface explorer. *)
open Driver

let logger_stats_of logger =
  {
    acked_writes = Rapilog.Trusted_logger.acked_writes logger;
    drain_writes = Rapilog.Trusted_logger.drain_writes logger;
    max_buffered = Rapilog.Trusted_logger.max_buffered_bytes logger;
    stalls = Rapilog.Trusted_logger.backpressure_stalls logger;
  }

let run_steady config =
  let built = Scenario.build config in
  let sim = built.Scenario.sim in
  let track = make_tracking () in
  let stop = ref false in
  spawn_loader built track ~after_load:(fun () ->
      let start = Time.add (Sim.now sim) config.Scenario.warmup in
      let finish = Time.add start config.Scenario.duration in
      track.window_start <- Some start;
      track.window_end <- Some finish;
      spawn_clients built track;
      Sim.schedule_at sim finish (fun () -> stop := true));
  while (not !stop) && Sim.step sim do () done;
  let log_stats = Storage.Block.stats built.Scenario.log_physical in
  let duration_s = Time.span_to_float_sec config.Scenario.duration in
  {
    mode = config.Scenario.mode;
    clients = config.Scenario.clients;
    committed_in_window = track.in_window;
    throughput = float_of_int track.in_window /. duration_s;
    latency_mean_us = Stats.Sample.mean track.latencies;
    latency_p50_us = Stats.Sample.percentile track.latencies 50.;
    latency_p95_us = Stats.Sample.percentile track.latencies 95.;
    latency_p99_us = Stats.Sample.percentile track.latencies 99.;
    physical_log_writes = Storage.Disk_stats.writes log_stats;
    physical_log_sectors = Storage.Disk_stats.sectors_written log_stats;
    wal_forces = Dbms.Wal.forces built.Scenario.wal;
    force_mean_bytes = Stats.Sample.mean (Dbms.Wal.force_bytes built.Scenario.wal);
    log_bytes_per_txn = Dbms.Engine.log_bytes_per_txn built.Scenario.engine;
    logger_stats = Option.map logger_stats_of built.Scenario.logger;
    total_committed = Dbms.Engine.committed_count built.Scenario.engine;
  }

let run_steady_metrics config =
  let registry = Metrics.create () in
  let result = Metrics.with_recording registry (fun () -> run_steady config) in
  (result, registry)

let run_failure config ~kind ~after =
  let built = Scenario.build config in
  let sim = built.Scenario.sim in
  let track = make_tracking () in
  let cut_at = ref Time.zero in
  let buffered_at_cut = ref None in
  (* Runtime verification rides along with every failure experiment: the
     monitor must be stopped once the failure sequence settles or its
     self-rescheduling would keep the event loop alive forever. *)
  let monitor = Option.map (Rapilog.Invariants.attach sim) built.Scenario.logger in
  let stop_monitor () = Option.iter Rapilog.Invariants.stop monitor in
  (match kind with
  | Power_cut ->
      (* At the power-fail instant, capture the logger's exposure; just
         before hold-up expiry, the machine stops executing (the guest
         halts), so nothing is acknowledged at or after the instant the
         devices lose power. *)
      Power.Power_domain.on_power_fail built.Scenario.power (fun ~window ->
          cut_at := Sim.now sim;
          buffered_at_cut :=
            Option.map Rapilog.Trusted_logger.buffered_bytes built.Scenario.logger;
          let dead = Time.add (Sim.now sim) window in
          Sim.schedule_at sim
            (Time.add dead (Time.ns (-1000)))
            (fun () -> Hypervisor.Vmm.crash_guest built.Scenario.vmm);
          Sim.schedule_at sim (Time.add dead (Time.ms 2)) stop_monitor)
  | Os_crash -> ());
  spawn_loader built track ~after_load:(fun () ->
      spawn_clients built track;
      let failure_at = Time.add (Sim.now sim) after in
      match kind with
      | Power_cut -> Power.Power_domain.cut_at built.Scenario.power failure_at
      | Os_crash ->
          Sim.schedule_at sim failure_at (fun () ->
              cut_at := Sim.now sim;
              Hypervisor.Vmm.crash_guest built.Scenario.vmm;
              (* The logger outlives the guest: wait for its drain. *)
              match built.Scenario.logger with
              | Some logger ->
                  ignore
                    (Process.spawn sim ~name:"quiesce" (fun () ->
                         Rapilog.Trusted_logger.quiesce logger;
                         stop_monitor ()))
              | None -> stop_monitor ()));
  Sim.run sim;
  (match kind with
  | Power_cut -> assert (Power.Power_domain.dead_at built.Scenario.power <> None)
  | Os_crash -> ());
  let recovery =
    Dbms.Recovery.run
      ~log_device:(Scenario.recovery_log_device built)
      ~data_device:built.Scenario.data_physical
      ~wal_config:built.Scenario.wal_config
      ~pool_config:built.Scenario.config.Scenario.pool
  in
  let audit = Audit.check ~model:track.model ~acked:track.acked ~recovery in
  {
    kind;
    fmode = config.Scenario.mode;
    acked = List.length track.acked;
    audit;
    cut_at = !cut_at;
    durable_records = recovery.Dbms.Recovery.durable_records;
    redo_applied = recovery.Dbms.Recovery.redo_applied;
    undo_applied = recovery.Dbms.Recovery.undo_applied;
    losers = List.length recovery.Dbms.Recovery.losers;
    buffered_at_cut = !buffered_at_cut;
    holdup_window =
      (match kind with
      | Power_cut -> Some (Power.Power_domain.window built.Scenario.power)
      | Os_crash -> None);
    invariant_violations =
      (match monitor with
      | Some monitor -> List.length (Rapilog.Invariants.violations monitor)
      | None -> 0);
  }

(* Batch entry points: each config is an independent world keyed by its
   seed, so sweeps fan out across domains via {!Parallel.map} with
   results (and their order) identical to a serial run. *)

let run_steady_batch ?jobs configs = Parallel.map ?jobs run_steady configs

let run_failure_batch ?jobs ~kind specs =
  Parallel.map ?jobs (fun (config, after) -> run_failure config ~kind ~after) specs

let sweep ?jobs ~config ~clients ~modes () =
  let cells =
    List.concat_map
      (fun n -> List.map (fun mode -> { config with Scenario.mode; clients = n }) modes)
      clients
  in
  let results = run_steady_batch ?jobs cells in
  let per_client = List.length modes in
  let rec take_drop n xs =
    if n = 0 then ([], xs)
    else
      match xs with
      | [] -> ([], [])
      | x :: rest ->
          let taken, dropped = take_drop (n - 1) rest in
          (x :: taken, dropped)
  in
  let rec regroup clients results =
    match clients with
    | [] -> []
    | n :: rest ->
        let row, remainder = take_drop per_client results in
        (n, row) :: regroup rest remainder
  in
  regroup clients results

let durability_ok result =
  let safe =
    Rapilog.Durability.holds result.audit.Audit.durability
    && result.invariant_violations = 0
  in
  match (Scenario.mode_is_durable result.fmode, result.kind) with
  | (`Always | `Machine_loss_too | `Minority_loss_too), (Power_cut | Os_crash) ->
      safe && result.audit.Audit.state_exact
  | `Os_crash_only, Os_crash -> safe && result.audit.Audit.state_exact
  | `Os_crash_only, Power_cut -> result.invariant_violations = 0  (* loss permitted *)
  | `Never, (Power_cut | Os_crash) -> result.invariant_violations = 0
