open Desim

type tracking = {
  model : (int, string) Hashtbl.t;
  mutable acked : int list;
  mutable window_start : Time.t option;
  mutable window_end : Time.t option;
  mutable in_window : int;
  latencies : Stats.Sample.t;
}

let make_tracking () =
  {
    model = Hashtbl.create 4096;
    acked = [];
    window_start = None;
    window_end = None;
    in_window = 0;
    latencies = Stats.Sample.create ();
  }

(* Wire form of a transaction's writes inside a journal [Ack] record:
   per write an LE int64 key, an LE int64 value length (-1 = delete),
   then the value bytes. {!decode_ack_writes} inverts it. *)
let encode_ack_writes writes =
  let buf = Buffer.create 64 in
  List.iter
    (fun (key, value) ->
      Buffer.add_int64_le buf (Int64.of_int key);
      match value with
      | Some v ->
          Buffer.add_int64_le buf (Int64.of_int (String.length v));
          Buffer.add_string buf v
      | None -> Buffer.add_int64_le buf (-1L))
    writes;
  Buffer.contents buf

let decode_ack_writes encoded =
  let pos = ref 0 in
  let int64 () =
    let v = Int64.to_int (String.get_int64_le encoded !pos) in
    pos := !pos + 8;
    v
  in
  let writes = ref [] in
  while !pos < String.length encoded do
    let key = int64 () in
    let len = int64 () in
    if len < 0 then writes := (key, None) :: !writes
    else begin
      writes := (key, Some (String.sub encoded !pos len)) :: !writes;
      pos := !pos + len
    end
  done;
  List.rev !writes

let record_ack track sim (result : Dbms.Engine.txn_result) =
  if result.Dbms.Engine.writes <> [] then begin
    track.acked <- result.Dbms.Engine.txid :: track.acked;
    (match Desim.Journal.recording () with
    | Some j ->
        Desim.Journal.ack j sim ~txid:result.Dbms.Engine.txid
          ~writes:(encode_ack_writes result.Dbms.Engine.writes)
    | None -> ());
    List.iter
      (fun (key, value) ->
        match value with
        | Some v -> Hashtbl.replace track.model key v
        | None -> Hashtbl.remove track.model key)
      result.Dbms.Engine.writes
  end;
  match (track.window_start, track.window_end) with
  | Some ws, Some we ->
      let now = Sim.now sim in
      if Time.(ws <= now) && Time.(now < we) then begin
        track.in_window <- track.in_window + 1;
        Stats.Sample.add_span track.latencies result.Dbms.Engine.latency
      end
  | Some _, None | None, Some _ | None, None -> ()

let load_chunk_rows = 64

(* Populate the schema through ordinary transactions, then hand over. *)
let spawn_loader (built : Scenario.built) track ~after_load =
  let rows = built.Scenario.generator.Scenario.initial_rows in
  ignore
    (Hypervisor.Vmm.spawn_guest built.Scenario.vmm ~name:"loader" (fun () ->
         let rec load = function
           | [] -> ()
           | rows ->
               let chunk, rest =
                 let rec split i acc = function
                   | [] -> (List.rev acc, [])
                   | rows when i = load_chunk_rows -> (List.rev acc, rows)
                   | row :: rows -> split (i + 1) (row :: acc) rows
                 in
                 split 0 [] rows
               in
               let ops =
                 List.map
                   (fun (key, value) -> Dbms.Engine.Put { key; value })
                   chunk
               in
               let result = Dbms.Engine.exec built.Scenario.engine ops in
               record_ack track built.Scenario.sim result;
               load rest
         in
         load rows;
         after_load ()))

(* Open-loop load: one dispatcher paces arrivals on the process's own
   clock; transactions queue in front of a fixed worker pool, so when
   the system falls behind, the backlog — and the sojourn time each
   acknowledgement reports — grows instead of the offered rate
   silently dropping. The sampler splits the simulation's root rng at
   spawn, an event every replay executes identically, so arrival
   instants are bit-identical across replays, the crash sweep and the
   parallel fan-out. *)
let spawn_open_loop (built : Scenario.built) track ~shape =
  let sim = built.Scenario.sim in
  let engine = built.Scenario.engine in
  let sampler = Workload.Arrival.create (Sim.rng sim) shape in
  let queue = Channel.create sim in
  let t0 = Sim.now sim in
  ignore
    (Hypervisor.Vmm.spawn_guest built.Scenario.vmm ~name:"arrivals" (fun () ->
         while true do
           let since = Time.diff (Sim.now sim) t0 in
           Process.sleep (Workload.Arrival.next_gap sampler ~since);
           Channel.send queue (Sim.now sim)
         done));
  for worker = 0 to built.Scenario.config.Scenario.clients - 1 do
    ignore
      (Hypervisor.Vmm.spawn_guest built.Scenario.vmm
         ~name:(Printf.sprintf "worker-%d" worker)
         (fun () ->
           while true do
             let arrived = Channel.recv queue in
             let ops = built.Scenario.generator.Scenario.next_txn () in
             let result = Dbms.Engine.exec engine ops in
             (* Latency is the arrival-to-ack sojourn: queueing behind a
                saturated pool is precisely the signal an open-loop
                workload exists to expose. *)
             let sojourn = Time.diff (Sim.now sim) arrived in
             record_ack track sim { result with Dbms.Engine.latency = sojourn }
           done))
  done

let churn_gate (built : Scenario.built) schedule =
  let sim = built.Scenario.sim in
  let clients = built.Scenario.config.Scenario.clients in
  let t0 = Sim.now sim in
  fun ~client ->
    let rec park () =
      let now = Time.diff (Sim.now sim) t0 in
      if not (Workload.Churn.active schedule ~clients ~client ~now) then begin
        Process.sleep (Workload.Churn.until_change schedule ~clients ~client ~now);
        park ()
      end
    in
    park ()

let spawn_clients (built : Scenario.built) track =
  match built.Scenario.config.Scenario.arrival with
  | Workload.Arrival.Open_loop shape -> spawn_open_loop built track ~shape
  | Workload.Arrival.Closed_loop ->
      let gate =
        Option.map (churn_gate built) built.Scenario.config.Scenario.churn
      in
      ignore
        (Workload.Client.spawn ~vmm:built.Scenario.vmm ?gate
           { Workload.Client.think_time = built.Scenario.config.Scenario.think_time }
           ~count:built.Scenario.config.Scenario.clients
           ~gen:(fun ~client:_ -> built.Scenario.generator.Scenario.next_txn ())
           ~engine:built.Scenario.engine
           ~on_commit:(fun ~client:_ result -> record_ack track built.Scenario.sim result))
