lib/desim/process.ml: Effect Sim Time
