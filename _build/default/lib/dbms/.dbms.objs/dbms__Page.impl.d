lib/dbms/page.ml: Buffer Bytes Crc32 Hashtbl Int Int32 Int64 List Lsn String
