(* fig6-disk-speed: sensitivity to the device's synchronous-write
   latency. RapiLog's gain is the ratio between a commit's rotational
   wait and a buffer ack, so it shrinks as the spindle speeds up and
   nearly vanishes on flash. *)

open Harness
open Bench_support

let rpms ~quick = if quick then [ 5400; 15000 ] else [ 4200; 5400; 7200; 10000; 15000 ]

let fig6 =
  {
    id = "fig6-disk-speed";
    title = "Fig 6: speedup vs device sync-write latency";
    description =
      "plots rapilog's speedup as the device's sync-write latency shrinks (15k rpm to flash)";
    run =
      (fun ~quick ->
        Report.section "Fig 6: RapiLog speedup vs device speed (8 clients, TPC-C-lite)";
        let measure device =
          let config = { (base_config ~quick) with Scenario.device; clients = 8 } in
          let sync =
            (steady { config with Scenario.mode = Scenario.Virt_sync })
              .Experiment.throughput
          in
          let rapilog =
            (steady { config with Scenario.mode = Scenario.Rapilog })
              .Experiment.throughput
          in
          (sync, rapilog)
        in
        let rows =
          List.map
            (fun rpm ->
              let device =
                Scenario.Disk (Storage.Hdd.config_with_rpm Storage.Hdd.default_7200rpm rpm)
              in
              let sync, rapilog = measure device in
              [
                Printf.sprintf "disk %d rpm" rpm;
                Printf.sprintf "%.1f"
                  (Desim.Time.span_to_float_ms
                     (Storage.Hdd.rotation_period
                        (Storage.Hdd.config_with_rpm Storage.Hdd.default_7200rpm rpm)));
                Report.float_cell sync;
                Report.float_cell rapilog;
                Printf.sprintf "%.1fx" (rapilog /. sync);
              ])
            (rpms ~quick)
          @ [
              (let sync, rapilog = measure (Scenario.Flash Storage.Ssd.default) in
               [
                 "ssd";
                 Printf.sprintf "%.1f"
                   (Desim.Time.span_to_float_ms
                      Storage.Ssd.default.Storage.Ssd.program_latency);
                 Report.float_cell sync;
                 Report.float_cell rapilog;
                 Printf.sprintf "%.1fx" (rapilog /. sync);
               ]);
            ]
        in
        Report.table
          ~columns:
            [ "device"; "sync latency ms"; "virt-sync txn/s"; "rapilog txn/s"; "speedup" ]
          ~rows;
        Report.bars ~title:"speedup by device" ~unit_label:"x"
          ~rows:
            (List.map
               (fun row ->
                 match row with
                 | [ device; _; _; _; speedup ] ->
                     ( device,
                       Float.of_string
                         (String.sub speedup 0 (String.length speedup - 1)) )
                 | _ -> ("?", nan))
               rows);
        Report.note
          "shape target: speedup decreases monotonically with device speed; smallest on the SSD");
  }

let experiments = [ fig6 ]
