open Desim

type backend = {
  be_info : Storage.Block.info;
  be_read : lba:int -> sectors:int -> string;
  be_write : lba:int -> data:string -> fua:bool -> unit;
  be_flush : unit -> unit;
  be_durable_read : lba:int -> sectors:int -> string;
  be_durable_extent : unit -> int;
}

let backend_of_block device =
  {
    be_info = Storage.Block.info device;
    be_read = (fun ~lba ~sectors -> Storage.Block.read device ~lba ~sectors);
    be_write = (fun ~lba ~data ~fua -> Storage.Block.write device ~fua ~lba data);
    be_flush = (fun () -> Storage.Block.flush device);
    be_durable_read =
      (fun ~lba ~sectors -> Storage.Block.durable_read device ~lba ~sectors);
    be_durable_extent = (fun () -> Storage.Block.durable_extent device);
  }

type request =
  | Read of { lba : int; sectors : int; resume : string Process.resumer }
  | Write of { lba : int; data : string; fua : bool; resume : unit Process.resumer }
  | Flush of { resume : unit Process.resumer }

let worker ipc backend queue () =
  while true do
    match Channel.recv queue with
    | Read { lba; sectors; resume } ->
        let data = backend.be_read ~lba ~sectors in
        Ipc.pay_complete ipc;
        resume data
    | Write { lba; data; fua; resume } ->
        backend.be_write ~lba ~data ~fua;
        Ipc.pay_complete ipc;
        resume ()
    | Flush { resume } ->
        backend.be_flush ();
        Ipc.pay_complete ipc;
        resume ()
  done

let create sim ~ipc ~backend_domain ?(queue_depth = 8) backend =
  assert (queue_depth > 0);
  let queue = Channel.create sim in
  for i = 1 to queue_depth do
    ignore
      (Domain.spawn backend_domain
         ~name:(Printf.sprintf "virtio-be-%d" i)
         (worker ipc backend queue))
  done;
  let journal = Desim.Journal.recording () in
  let journal_id =
    match journal with
    | Some j ->
        Desim.Journal.register_port j
          ~model:("virtio:" ^ backend.be_info.Storage.Block.model)
    | None -> -1
  in
  (* [on_send] fires at the instant the request crosses into the backend
     queue — the point from which it survives a guest crash, which is
     why the journal stamps write submissions exactly here. *)
  let submit ?on_send make_request =
    Ipc.pay_submit ipc;
    Process.suspend (fun resume ->
        (match on_send with Some f -> f () | None -> ());
        Channel.send queue (make_request resume))
  in
  let stats = Storage.Disk_stats.create () in
  (* Frontend-observed write service (queue + IPC + backend), one stage
     histogram per attached device so the log path and the data path
     stay distinguishable in the breakdown. *)
  let m_write =
    Option.map
      (fun reg ->
        Desim.Metrics.histogram reg
          ("virtio.write:" ^ backend.be_info.Storage.Block.model))
      (Desim.Metrics.recording ())
  in
  let ops =
    {
      Storage.Block.op_read =
        (fun ~lba ~sectors ->
          let started = Sim.now sim in
          let data = submit (fun resume -> Read { lba; sectors; resume }) in
          Storage.Disk_stats.record_read stats ~sectors
            ~service:(Time.diff (Sim.now sim) started);
          data);
      op_write =
        (fun ~lba ~data ~fua ->
          let started = Sim.now sim in
          let sectors =
            String.length data / backend.be_info.Storage.Block.sector_size
          in
          let on_send =
            match journal with
            | Some j ->
                Some (fun () -> Desim.Journal.submit j sim ~port:journal_id ~lba ~sectors)
            | None -> None
          in
          submit ?on_send (fun resume -> Write { lba; data; fua; resume });
          let service = Time.diff (Sim.now sim) started in
          (match m_write with
          | Some h -> Desim.Metrics.Histogram.observe_span h service
          | None -> ());
          Storage.Disk_stats.record_write stats ~sectors ~service);
      op_flush =
        (fun () ->
          let started = Sim.now sim in
          submit (fun resume -> Flush { resume });
          Storage.Disk_stats.record_flush stats
            ~service:(Time.diff (Sim.now sim) started));
      op_power_cut = (fun () -> ());
      (* The frontend is software; electrical failure reaches the physical
         device through its own registration with the power domain. *)
      op_durable_read = backend.be_durable_read;
      op_durable_extent = backend.be_durable_extent;
    }
  in
  Storage.Block.make ~journal_id
    ~info:{ backend.be_info with Storage.Block.model = "virtio:" ^ backend.be_info.Storage.Block.model }
    ~stats ~ops ()
