examples/crash_and_restart.ml: Dbms Desim Hashtbl Hypervisor List Option Printf Process Rapilog Sim Storage Time
