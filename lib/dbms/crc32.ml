(* Table-driven CRC-32 over plain (untagged-arithmetic) ints,
   slicing-by-eight.

   The recovery scan CRC-checks every log record and every page image,
   and the crash-surface sweep runs recovery at tens of thousands of
   boundaries — so this is a hot path. Working in boxed [Int32] costs
   an allocation per byte; native ints are wide enough to hold the
   32-bit register on every platform OCaml 5 supports, so the inner
   loop is allocation-free. Slicing-by-eight folds eight input bytes
   per iteration through eight precomputed tables — the standard
   construction: [T.(0)] is the byte-at-a-time table, and
   [T.(k+1).(n) = T.(0).(T.(k).(n) land 0xFF) lxor (T.(k).(n) lsr 8)]
   advances a value through one more zero byte. The public interface
   still speaks [int32] (the on-disk trailer format), and the digests
   are bit-identical to the byte-at-a-time implementation. *)

let mask = 0xFFFFFFFF

let tables =
  lazy
    (let t0 =
       Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             if !c land 1 <> 0 then c := 0xEDB88320 lxor (!c lsr 1)
             else c := !c lsr 1
           done;
           !c)
     in
     let tables = Array.make 8 t0 in
     for k = 1 to 7 do
       let prev = tables.(k - 1) in
       tables.(k) <-
         Array.init 256 (fun n ->
             let c = prev.(n) in
             t0.(c land 0xFF) lxor (c lsr 8))
     done;
     tables)

let[@inline] byte_s s i = Char.code (String.unsafe_get s i)
let[@inline] byte_b b i = Char.code (Bytes.unsafe_get b i)

let update_string_raw crc0 s ~pos ~len =
  assert (pos >= 0 && len >= 0);
  let tables = Lazy.force tables in
  let t0 = Array.unsafe_get tables 0
  and t1 = Array.unsafe_get tables 1
  and t2 = Array.unsafe_get tables 2
  and t3 = Array.unsafe_get tables 3
  and t4 = Array.unsafe_get tables 4
  and t5 = Array.unsafe_get tables 5
  and t6 = Array.unsafe_get tables 6
  and t7 = Array.unsafe_get tables 7 in
  let crc = ref crc0 in
  let i = ref pos in
  let stop = pos + len in
  while stop - !i >= 8 do
    let j = !i in
    let c = !crc in
    crc :=
      Array.unsafe_get t7 ((c lxor byte_s s j) land 0xFF)
      lxor Array.unsafe_get t6 (((c lsr 8) lxor byte_s s (j + 1)) land 0xFF)
      lxor Array.unsafe_get t5 (((c lsr 16) lxor byte_s s (j + 2)) land 0xFF)
      lxor Array.unsafe_get t4 (((c lsr 24) lxor byte_s s (j + 3)) land 0xFF)
      lxor Array.unsafe_get t3 (byte_s s (j + 4))
      lxor Array.unsafe_get t2 (byte_s s (j + 5))
      lxor Array.unsafe_get t1 (byte_s s (j + 6))
      lxor Array.unsafe_get t0 (byte_s s (j + 7));
    i := j + 8
  done;
  while !i < stop do
    crc := Array.unsafe_get t0 ((!crc lxor byte_s s !i) land 0xFF) lxor (!crc lsr 8);
    incr i
  done;
  !crc

let digest_string_raw s ~pos ~len =
  Int32.of_int (update_string_raw mask s ~pos ~len lxor mask land mask)

let digest_bytes_raw b ~pos ~len =
  assert (pos >= 0 && len >= 0);
  let tables = Lazy.force tables in
  let t0 = Array.unsafe_get tables 0
  and t1 = Array.unsafe_get tables 1
  and t2 = Array.unsafe_get tables 2
  and t3 = Array.unsafe_get tables 3
  and t4 = Array.unsafe_get tables 4
  and t5 = Array.unsafe_get tables 5
  and t6 = Array.unsafe_get tables 6
  and t7 = Array.unsafe_get tables 7 in
  let crc = ref mask in
  let i = ref pos in
  let stop = pos + len in
  while stop - !i >= 8 do
    let j = !i in
    let c = !crc in
    crc :=
      Array.unsafe_get t7 ((c lxor byte_b b j) land 0xFF)
      lxor Array.unsafe_get t6 (((c lsr 8) lxor byte_b b (j + 1)) land 0xFF)
      lxor Array.unsafe_get t5 (((c lsr 16) lxor byte_b b (j + 2)) land 0xFF)
      lxor Array.unsafe_get t4 (((c lsr 24) lxor byte_b b (j + 3)) land 0xFF)
      lxor Array.unsafe_get t3 (byte_b b (j + 4))
      lxor Array.unsafe_get t2 (byte_b b (j + 5))
      lxor Array.unsafe_get t1 (byte_b b (j + 6))
      lxor Array.unsafe_get t0 (byte_b b (j + 7));
    i := j + 8
  done;
  while !i < stop do
    crc := Array.unsafe_get t0 ((!crc lxor byte_b b !i) land 0xFF) lxor (!crc lsr 8);
    incr i
  done;
  Int32.of_int (!crc lxor mask land mask)

let digest s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.digest";
  digest_string_raw s ~pos ~len

let digest_string s = digest_string_raw s ~pos:0 ~len:(String.length s)

let digest_bytes b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.digest_bytes";
  digest_bytes_raw b ~pos ~len

(* Incremental interface over the same untagged register: the log
   append path feeds each field into the CRC as it writes it into the
   stream buffer, so no contiguous copy of the record ever exists. *)

type state = int

let init = mask

let[@inline] update_byte crc b =
  let t0 = Array.unsafe_get (Lazy.force tables) 0 in
  Array.unsafe_get t0 ((crc lxor b) land 0xFF) lxor (crc lsr 8)

let update_string crc s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update_string";
  update_string_raw crc s ~pos ~len

let finish crc = crc lxor mask land mask
