lib/core/invariants.mli: Desim Trusted_logger
