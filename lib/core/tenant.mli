(** Tenant-tagged transaction identifiers.

    The sharded logger tier ({!module:Shard} in [rapilog.shard])
    multiplexes many tenants' log streams over the same
    {!Log_record.t} wire format the single-tenant DBMS uses. A tenant
    append is an ordinary [Update]/[Commit] record pair whose [txid]
    packs the tenant id and the tenant's own append sequence number
    into one integer, so per-tenant recovery needs no new record kinds:
    the committed txids of a standard recovery pass unpack directly
    into per-tenant sequence sets.

    The packing reserves the low {!seq_bits} bits for the sequence
    number; tenant ids start at 1, so every packed txid is at least
    [2^seq_bits] — far above the small consecutive txids a co-resident
    DBMS allocates, which is what lets one device region hold both
    without ambiguity (tenant 0 names the embedded DBMS in the tier's
    accounting). *)

val seq_bits : int
(** Bits reserved for the per-tenant sequence number (20). *)

val max_seq : int
(** Largest packable sequence number, [2^seq_bits - 1]. *)

val max_tenant : int
(** Largest packable tenant id. *)

val pack : tenant:int -> seq:int -> int
(** [pack ~tenant ~seq] builds the tagged txid. Requires
    [1 <= tenant <= max_tenant] and [1 <= seq <= max_seq]. *)

val tenant_of : int -> int
(** The tenant id a packed txid carries. *)

val seq_of : int -> int
(** The sequence number a packed txid carries. *)

val is_tagged : int -> bool
(** Whether a txid was produced by {!pack} — i.e. it is at least
    [2^seq_bits]. Plain DBMS txids (small consecutive integers) are
    not. *)
