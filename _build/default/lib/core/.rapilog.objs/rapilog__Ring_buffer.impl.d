lib/core/ring_buffer.ml: Bytes List Queue String
