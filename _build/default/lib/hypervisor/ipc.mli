(** Cost model for crossing protection boundaries.

    A paravirtualised I/O request from the guest costs one VM exit plus a
    kernel IPC to the backend domain on the way in, and an IPC plus a
    guest re-entry on the way back. On the paper's hardware an seL4 IPC is
    well under a microsecond, but the exit/entry path and the driver
    round-trip dominate; we fold each direction into a single span. *)

type cost = {
  submit : Desim.Time.span;  (** guest → backend: exit + IPC + dispatch *)
  complete : Desim.Time.span;  (** backend → guest: IPC + injection + entry *)
}

val default_sel4 : cost
(** ~12 us each way: a paravirtual block request round-trip of the
    paper's era. *)

val free : cost
(** Zero-cost boundary, for native (non-virtualised) configurations. *)

val pay_submit : cost -> unit
(** Sleep the calling process for the submit cost. *)

val pay_complete : cost -> unit

val round_trip : cost -> Desim.Time.span
