(* tab5-residual-energy: the hold-up budget argument, quantified.
   After a power cut the trusted logger has [window = energy / draw]
   seconds to drain at the device's streaming rate. The table crosses
   buffer fill levels with PSU budgets; the simulated column injects a
   real cut at peak load and reports the observed outcome. *)

open Desim
open Harness
open Bench_support

let tab5 =
  {
    id = "tab5-residual-energy";
    title = "Tab 5: PSU hold-up budget vs buffer fill";
    description =
      "checks the PSU hold-up window covers draining a full trusted buffer";
    run =
      (fun ~quick ->
        Report.section "Tab 5: residual-energy budget (analytic + injected cuts)";
        let drain_bw =
          Scenario.hdd_streaming_bandwidth Storage.Hdd.default_7200rpm /. 2.
        in
        Report.kvf "drain bandwidth" "%.0f MB/s" (drain_bw /. 1e6);
        (* Analytic: flush time for each fill level vs candidate windows. *)
        let fills = [ 256 * 1024; 1024 * 1024; 4 * 1024 * 1024; 16 * 1024 * 1024 ] in
        let windows_ms = [ 50; 100; 300; 1000 ] in
        Report.subsection "analytic: does <fill> drain within <window>?";
        Report.table
          ~columns:
            ("buffer fill"
            :: List.map (fun w -> Printf.sprintf "%dms" w) windows_ms)
          ~rows:
            (List.map
               (fun fill ->
                 let flush_ms = float_of_int fill /. drain_bw *. 1e3 in
                 Printf.sprintf "%dKiB (%.0fms)" (fill / 1024) flush_ms
                 :: List.map
                      (fun w -> bool_cell (flush_ms <= float_of_int w))
                      windows_ms)
               fills);
        (* Empirical: inject cuts under load at several PSU budgets. *)
        Report.subsection "injected cuts at each PSU budget (rapilog, 16 clients)";
        let trials = if quick then 3 else 8 in
        let windows = [ 50; 100; 300 ] in
        (* Fan every (window, trial) cut out across the worker pool. *)
        let specs =
          List.concat_map
            (fun window_ms ->
              let psu = Power.Psu.of_window (Time.ms window_ms) in
              List.init trials (fun i ->
                  let trial = i + 1 in
                  ( {
                      (base_config ~quick) with
                      Scenario.mode = Scenario.Rapilog;
                      clients = 16;
                      psu;
                      seed = Int64.of_int ((window_ms * 100) + trial);
                    },
                    Time.ms (150 + (61 * trial mod 300)) )))
            windows
        in
        let results =
          Experiment.run_failure_batch ~kind:Experiment.Power_cut specs
        in
        let rows =
          List.mapi
            (fun wi window_ms ->
              let lost = ref 0 and acked = ref 0 and buffered = ref 0 in
              List.iteri
                (fun i (r : Experiment.failure_result) ->
                  if i / trials = wi then begin
                    acked := !acked + r.Experiment.acked;
                    lost :=
                      !lost
                      + List.length
                          r.Experiment.audit.Audit.durability.Rapilog.Durability.lost;
                    buffered :=
                      max !buffered
                        (Option.value r.Experiment.buffered_at_cut ~default:0)
                  end)
                results;
              [
                Printf.sprintf "%dms" window_ms;
                string_of_int trials;
                string_of_int !acked;
                Printf.sprintf "%dKiB" (!buffered / 1024);
                string_of_int !lost;
              ])
            windows
        in
        Report.table
          ~columns:[ "hold-up"; "trials"; "acked"; "max buffered at cut"; "lost" ]
          ~rows;
        Report.note
          "shape target: zero loss whenever the worst observed fill drains within the window;";
        Report.note
          "the default 8MiB buffer + 300ms window leaves a comfortable margin at full load");
  }

let experiments = [ tab5 ]
