(* The observability tour: the three ways to watch this system work.

   1. Metrics — install a {!Desim.Metrics} registry around a steady run
      and get per-stage commit-path latency histograms: where does a
      commit's time go between the engine, the WAL, the virtio
      frontend, the trusted logger and the physical disk?
   2. Tracing — attach a {!Desim.Trace} collector to the trusted logger
      and see the individual drain/backpressure events.
   3. Runtime verification — the {!Rapilog.Invariants} monitor rides
      along and reports whether the logger ever broke its admission
      contract.

   Run with: dune exec examples/observability.exe *)

open Desim

(* ---- part 1: where the milliseconds go ------------------------------ *)

let metrics_tour () =
  print_endline "== part 1: per-stage commit latency (metrics registry) ==";
  let config =
    {
      Harness.Scenario.default with
      Harness.Scenario.clients = 4;
      warmup = Time.ms 100;
      duration = Time.ms 400;
      workload = Harness.Scenario.Micro Workload.Microbench.default_config;
    }
  in
  List.iter
    (fun mode ->
      let config = { config with Harness.Scenario.mode } in
      let result, registry = Harness.Experiment.run_steady_metrics config in
      Printf.printf "\n-- %s: %.0f txn/s, client p50 %.0f us --\n"
        (Harness.Scenario.mode_name mode)
        result.Harness.Experiment.throughput
        result.Harness.Experiment.latency_p50_us;
      Harness.Metrics_report.print registry)
    [ Harness.Scenario.Native_sync; Harness.Scenario.Rapilog ];
  print_endline
    "\nread it bottom-up: device.write is the physical rotation; native-sync's\n\
     commit.force waits for it, rapilog's commit.force only pays the trusted\n\
     copy (logger.admission) while logger.drain_write retires the same bytes\n\
     off the critical path."

(* ---- parts 2 and 3: tracing and the invariant monitor --------------- *)

let trace_tour () =
  print_endline "\n== part 2: trace collector on the trusted logger ==";
  let sim = Sim.create ~seed:3L () in
  let vmm = Hypervisor.Vmm.create sim Hypervisor.Vmm.default_sel4 in
  let power = Power.Power_domain.create sim (Power.Psu.of_window (Time.ms 150)) in
  let disk = Storage.Hdd.create sim Storage.Hdd.default_7200rpm in
  let trace = Trace.collector ~capacity:64 () in
  let log_dev, logger =
    Rapilog.attach ~vmm ~power ~trace
      ~config:
        {
          Rapilog.Trusted_logger.default_config with
          Rapilog.Trusted_logger.buffer_bytes = 64 * 1024;
        }
      ~device:disk ()
  in
  let monitor = Rapilog.Invariants.attach sim logger in

  (* A write burst that overwhelms the 64 KiB buffer. *)
  ignore
    (Hypervisor.Vmm.spawn_guest vmm ~name:"burst" (fun () ->
         for i = 0 to 511 do
           Storage.Block.write log_dev ~lba:(i * 8) (String.make 4096 'b')
         done));
  Power.Power_domain.cut_at power (Time.add Time.zero (Time.ms 60));
  (* The monitor reschedules itself forever, so bound the run. *)
  Sim.run ~until:(Time.add Time.zero (Time.ms 400)) sim;
  Rapilog.Invariants.stop monitor;

  Printf.printf "acked writes        : %d\n" (Rapilog.Trusted_logger.acked_writes logger);
  Printf.printf "physical drains     : %d\n" (Rapilog.Trusted_logger.drain_writes logger);
  Printf.printf "backpressure stalls : %d\n"
    (Rapilog.Trusted_logger.backpressure_stalls logger);
  Printf.printf "high-water mark     : %d KiB\n"
    (Rapilog.Trusted_logger.max_buffered_bytes logger / 1024);

  Printf.printf "\nlast trace events (of %d emitted):\n" (Trace.count trace);
  List.iteri
    (fun i record ->
      if i < 8 then
        Printf.printf "  [%s] %-12s %s\n"
          (Format.asprintf "%a" Time.pp record.Trace.time)
          record.Trace.tag record.Trace.message)
    (Trace.records trace);

  print_endline "\n== part 3: the runtime invariant monitor ==";
  Printf.printf "checks performed : %d\n" (Rapilog.Invariants.checks_performed monitor);
  (match Rapilog.Invariants.violations monitor with
  | [] -> print_endline "violations       : none"
  | violations ->
      List.iter
        (fun v ->
          Printf.printf "VIOLATION at %s: %s (%s)\n"
            (Format.asprintf "%a" Time.pp v.Rapilog.Invariants.at)
            v.Rapilog.Invariants.invariant v.Rapilog.Invariants.detail)
        violations;
      exit 1);
  assert (Rapilog.Invariants.ok monitor)

let () =
  metrics_tour ();
  trace_tour ()
