lib/dbms/recovery.mli: Buffer_pool Hashtbl Log_record Lsn Storage Wal
