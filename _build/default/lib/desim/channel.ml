type 'a t = {
  sim : Sim.t;
  items : 'a Queue.t;
  waiters : 'a Process.resumer Queue.t;
}

let create sim = { sim; items = Queue.create (); waiters = Queue.create () }

let send t v =
  match Queue.take_opt t.waiters with
  | Some resumer -> Sim.schedule_now t.sim (fun () -> resumer v)
  | None -> Queue.push v t.items

let recv t =
  match Queue.take_opt t.items with
  | Some v -> v
  | None -> Process.suspend (fun resumer -> Queue.push resumer t.waiters)

let recv_opt t = Queue.take_opt t.items
let length t = Queue.length t.items
