(** Write-ahead log manager.

    The logical log is one or more ([streams]) append-only byte streams
    of encoded {!Log_record.t}s. {!append} only buffers in (guest)
    memory; {!force} makes a stream durable up to a target LSN by
    writing the not-yet written sector range to the log device. Because
    each stream's device write is serialised by a mutex, committers that
    arrive while a force is in flight wait, and the next force covers
    all of their records in one device write — i.e. *group commit* falls
    out of the structure; {!force_batched} additionally applies the
    engine's {!Commit_policy} gather wait on top. A force that begins or
    ends mid-sector rewrites the partial sector (zero-padded at the
    tail), which is how real WAL implementations handle unaligned tails.

    With [streams > 1] each stream is an independent log: its own LSN
    space (byte offsets within the stream), its own durable prefix, its
    own device region ([stream_stride_sectors] apart), and forces on
    different streams proceed concurrently. Cross-stream atomicity is
    the engine's job, via dependency vectors threaded through
    {!dep_watermark} and recorded in [Commit_multi] records — recovery
    then accepts a commit only if every per-stream dependency is inside
    that stream's durable prefix.

    What "durable" means depends on the device the WAL writes to: a raw
    disk with its write cache disabled is durable at completion; a
    write-cache device needs [flush_after_write] (and the *unsafe*
    configuration deliberately leaves it off); the RapiLog virtual log
    disk acks from the trusted buffer, and its contract makes that ack
    durable.

    On-device layout: sector [master_lba] holds the master block (the
    latest checkpoint's redo LSN); stream [s]'s byte 0 lives at
    [log_start_lba + s * stream_stride_sectors]. *)

type config = {
  master_lba : int;
  log_start_lba : int;
  flush_after_write : bool;
      (** issue a device flush after every force — required for
          durability on volatile-cache devices *)
  streams : int;  (** parallel log streams; 1 = the classic single log *)
  stream_stride_sectors : int;
      (** device-region spacing between consecutive streams' byte 0;
          also each stream's region size when [streams > 1] *)
}

val default_config : config
(** Master at sector 0, log from sector 8, no flush-after-write, one
    stream (64 Ki-sector stride when widened). *)

val stream_start_lba : config -> int -> int
(** Device sector holding byte 0 of the given stream. *)

type t

val create : Desim.Sim.t -> config -> device:Storage.Block.t -> t

val create_resumed :
  Desim.Sim.t ->
  config ->
  device:Storage.Block.t ->
  flushed:Lsn.t ->
  tail:string ->
  t
(** Resume logging after a restart: the stream continues at [flushed]
    (the durable log end recovery found), and [tail] supplies the bytes
    between the last sector boundary and [flushed] so that the next
    force can rewrite the partial tail sector correctly. Requires
    [String.length tail = flushed mod sector_size] and a single-stream
    config. *)

val stream_count : t -> int

val set_policy : t -> Commit_policy.t -> unit
(** Install the commit-batching policy {!force_batched} applies; set
    from the engine profile at engine creation. Defaults to
    {!Commit_policy.default}. *)

val policy : t -> Commit_policy.t

val dep_watermark : t -> int array
(** The cross-stream commit-dependency watermark, one slot per stream:
    slot [s] is the highest stream-[s] LSN any committed transaction has
    depended on. The engine folds it into each commit's dependency
    vector and publishes the vector back (both without blocking, so the
    read-modify-write is atomic in the cooperative simulation), which
    totally orders multi-stream commits for recovery. *)

val append : ?stream:int -> t -> Log_record.t -> Lsn.t
(** Buffer a record; returns its end LSN (within [stream], default 0).
    Callable from any context. *)

val end_lsn : ?stream:int -> t -> Lsn.t
(** LSN just past the last appended record of the stream. *)

val flushed_lsn : ?stream:int -> t -> Lsn.t
(** Stream prefix known durable (per the device's contract). *)

val ewma_ns : ?stream:int -> t -> int
(** The stream's EWMA of observed device write latency in nanoseconds
    (0 until the first force writes); the adaptive policy's input. *)

val force : ?stream:int -> t -> Lsn.t -> unit
(** Block until [flushed_lsn ~stream t >= target]. Must run in a
    process. *)

val force_batched : ?stream:int -> t -> Lsn.t -> unit
(** {!force} for the commit path: applies the installed
    {!Commit_policy}'s gather wait before the force leader writes.
    [Fixed 1] and [Serial] skip the wait without scheduling any event,
    making this identical to {!force} for the default profiles. *)

val force_exclusive : ?stream:int -> t -> unit
(** Unconditionally issue a device write covering the unflushed range
    (rewriting the tail sector when there is nothing new). This is what
    an engine *without* group commit does: one physical write per
    commit, even when a concurrent committer already covered it. *)

val write_master : t -> Lsn.t -> unit
(** Persist the checkpoint redo LSN in the master block (FUA write).
    Must run in a process. *)

val read_master : config -> device:Storage.Block.t -> Lsn.t option
(** Post-crash, untimed: the redo LSN recorded by the last completed
    checkpoint, if any master block is intact on media. *)

val truncate : t -> Lsn.t -> unit
(** Release the in-memory stream before [lsn] (sector-aligned down);
    requires [lsn <= flushed_lsn t] and a single-stream config.
    Checkpointing truncates to the redo point, bounding the WAL's memory
    to the since-last-checkpoint window. (Only guest memory is recycled:
    the on-media log region is append-only in this model, so recovery
    still scans from the start.) *)

val base_lsn : ?stream:int -> t -> Lsn.t
(** Oldest stream offset still held in memory. *)

val truncated_bytes : t -> int

val forces : t -> int
(** Number of device writes issued by {!force} across all streams
    (group-commit batches). *)

val force_bytes : t -> Desim.Stats.Sample.t
(** Batch sizes in bytes, one observation per force. *)

val stream_contents : ?stream:int -> t -> string
(** The stream's in-memory bytes from {!base_lsn} onwards; for tests. *)
