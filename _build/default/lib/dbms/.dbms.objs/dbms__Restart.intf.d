lib/dbms/restart.mli: Buffer_pool Engine Engine_profile Hypervisor Recovery Storage Wal
