examples/power_failure.mli:
