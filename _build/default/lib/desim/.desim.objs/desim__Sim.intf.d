lib/desim/sim.mli: Rng Time
