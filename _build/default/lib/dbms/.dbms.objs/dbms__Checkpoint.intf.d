lib/dbms/checkpoint.mli: Buffer_pool Desim Hypervisor Lsn Wal
