lib/harness/audit.ml: Dbms Format Hashtbl Int List Rapilog Set
