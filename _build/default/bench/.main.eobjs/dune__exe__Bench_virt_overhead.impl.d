bench/bench_virt_overhead.ml: Bench_support Desim Experiment Harness Hypervisor Printf Report Scenario Sim Storage String Time
