open Desim

type op =
  | Put of { key : int; value : string }
  | Get of { key : int }
  | Delete of { key : int }

type txn_result = {
  txid : int;
  writes : (int * string option) list;
  reads : (int * string option) list;
  latency : Time.span;
}

(* Commit-path stage handles ({!Desim.Metrics} discipline: resolved once
   at create, [None] when metrics are off). [commit.exec] covers client
   submit to commit-record append; [commit.force] the wait for log
   durability (or the ack point, for async commit); [commit.total] the
   whole client-visible latency of a write transaction. *)
type engine_metrics = {
  m_exec : Metrics.Histogram.t;
  m_force : Metrics.Histogram.t;
  m_total : Metrics.Histogram.t;
  m_commits : Metrics.Counter.t;
}

type t = {
  vmm : Hypervisor.Vmm.t;
  profile : Engine_profile.t;
  async_commit : bool;
  wal : Wal.t;
  pool : Buffer_pool.t;
  locks : Lock_table.t;
  txns : Txn.Manager.t;
  commit_serialiser : Resource.Mutex.t;  (* used when group commit is off *)
  mutable committed_txids : int list;  (* descending *)
  latencies : Stats.Sample.t;
  metrics : engine_metrics option;
}

let create ~vmm ~profile ?(async_commit = false) ?first_txid ~wal ~pool () =
  let sim = Hypervisor.Vmm.sim vmm in
  {
    vmm;
    profile;
    async_commit;
    wal;
    pool;
    locks = Lock_table.create sim;
    txns = Txn.Manager.create ?first_txid ();
    commit_serialiser = Resource.Mutex.create sim;
    committed_txids = [];
    latencies = Stats.Sample.create ();
    metrics =
      Option.map
        (fun reg ->
          {
            m_exec = Metrics.histogram reg "commit.exec";
            m_force = Metrics.histogram reg "commit.force";
            m_total = Metrics.histogram reg "commit.total";
            m_commits = Metrics.counter reg "engine.write_commits";
          })
        (Metrics.recording ());
  }

let spawn_wal_writer t domain ~interval =
  assert (Time.compare_span interval Time.zero_span > 0);
  Hypervisor.Domain.spawn domain ~name:"wal-writer" (fun () ->
      while true do
        Process.sleep interval;
        Wal.force t.wal (Wal.end_lsn t.wal)
      done)

let profile t = t.profile
let wal t = t.wal
let pool t = t.pool

let write_set ops =
  (* Lock acquisition in key order prevents deadlock; the last write to a
     key within one transaction wins. A [None] value is a delete. *)
  let last = Hashtbl.create 8 in
  List.iter
    (function
      | Put { key; value } ->
          assert (String.length value > 0);
          Hashtbl.replace last key (Some value)
      | Delete { key } -> Hashtbl.replace last key None
      | Get _ -> ())
    ops;
  let writes = Hashtbl.fold (fun key value acc -> (key, value) :: acc) last [] in
  List.sort (fun (a, _) (b, _) -> Int.compare a b) writes

let read_set ops =
  List.filter_map (function Get { key } -> Some key | Put _ | Delete _ -> None) ops

let apply_update t txn ~key ~value =
  Buffer_pool.with_page t.pool ~key (fun page ->
      let before = Option.value (Page.get page ~key) ~default:"" in
      Txn.record_update txn ~key ~before;
      (* An empty after-image encodes the delete, mirroring the empty
         before-image for "key did not exist". *)
      let after = Option.value value ~default:"" in
      let lsn =
        Wal.append t.wal
          (Log_record.Update { txid = Txn.txid txn; key; before; after })
      in
      let lsn =
        if t.profile.Engine_profile.update_meta_bytes > 0 then
          Wal.append t.wal
            (Log_record.Noop { filler = t.profile.Engine_profile.update_meta_bytes })
        else lsn
      in
      Buffer_pool.mark_dirty t.pool page ~lsn;
      match value with
      | Some v -> Page.set page ~key ~value:v ~lsn
      | None ->
          Hashtbl.remove page.Page.values key;
          page.Page.page_lsn <- Lsn.max page.Page.page_lsn lsn)

let cpu t span = Hypervisor.Vmm.exec t.vmm span

let run_ops t txn ops =
  let writes = write_set ops in
  List.iter (fun (key, _) -> Lock_table.lock t.locks ~txid:(Txn.txid txn) ~key;
              Txn.record_lock txn key)
    writes;
  let reads =
    List.map
      (fun key ->
        cpu t t.profile.Engine_profile.op_cpu;
        (key, Buffer_pool.with_page t.pool ~key (fun page -> Page.get page ~key)))
      (read_set ops)
  in
  List.iter
    (fun (key, value) ->
      cpu t t.profile.Engine_profile.op_cpu;
      apply_update t txn ~key ~value)
    writes;
  (writes, reads)

let release txn t = Lock_table.unlock_all t.locks ~txid:(Txn.txid txn) ~keys:(Txn.locked_keys txn)

let force_commit t lsn =
  if Time.compare_span t.profile.Engine_profile.commit_delay Time.zero_span > 0
  then Process.sleep t.profile.Engine_profile.commit_delay;
  Wal.force t.wal lsn

let exec t ops =
  let sim = Hypervisor.Vmm.sim t.vmm in
  let started = Sim.now sim in
  let started_ns = Time.to_ns started in
  cpu t t.profile.Engine_profile.txn_base_cpu;
  let txn = Txn.Manager.begin_txn t.txns in
  ignore (Wal.append t.wal (Log_record.Begin { txid = Txn.txid txn }));
  let writes, reads = run_ops t txn ops in
  if writes = [] then begin
    (* Read-only transactions commit without touching the log device. *)
    Txn.Manager.finish t.txns txn Txn.Committed;
    release txn t
  end
  else begin
    let commit_lsn = Wal.append t.wal (Log_record.Commit { txid = Txn.txid txn }) in
    let force_started =
      match t.metrics with
      | Some m ->
          Metrics.Span.finish m.m_exec sim started_ns;
          Metrics.Span.start sim
      | None -> 0
    in
    if t.async_commit then ()  (* ack without forcing: the unsafe classic *)
    else if t.profile.Engine_profile.group_commit then force_commit t commit_lsn
    else
      (* No group commit: every transaction pays its own physical log
         write, serialised. *)
      Resource.Mutex.with_lock t.commit_serialiser (fun () ->
          Wal.force_exclusive t.wal);
    (match t.metrics with
    | Some m ->
        Metrics.Span.finish m.m_force sim force_started;
        Metrics.Counter.incr m.m_commits
    | None -> ());
    Txn.Manager.finish t.txns txn Txn.Committed;
    release txn t
  end;
  let latency = Time.diff (Sim.now sim) started in
  (match t.metrics with
  | Some m when writes <> [] -> Metrics.Histogram.observe_span m.m_total latency
  | Some _ | None -> ());
  t.committed_txids <- Txn.txid txn :: t.committed_txids;
  Stats.Sample.add_span t.latencies latency;
  { txid = Txn.txid txn; writes; reads; latency }

let undo_in_memory t txn =
  (* Each rollback step is logged as a compensating update so that redo
     repeats the rollback after a crash. *)
  List.iter
    (fun (key, before) ->
      Buffer_pool.with_page t.pool ~key (fun page ->
          let current = Option.value (Page.get page ~key) ~default:"" in
          let lsn =
            Wal.append t.wal
              (Log_record.Update
                 { txid = Txn.txid txn; key; before = current; after = before })
          in
          Buffer_pool.mark_dirty t.pool page ~lsn;
          if String.length before = 0 then Hashtbl.remove page.Page.values key
          else Page.set page ~key ~value:before ~lsn;
          page.Page.page_lsn <- Lsn.max page.Page.page_lsn lsn))
    (Txn.undo_log txn)

let exec_abort t ops =
  cpu t t.profile.Engine_profile.txn_base_cpu;
  let txn = Txn.Manager.begin_txn t.txns in
  ignore (Wal.append t.wal (Log_record.Begin { txid = Txn.txid txn }));
  ignore (run_ops t txn ops);
  undo_in_memory t txn;
  ignore (Wal.append t.wal (Log_record.Abort { txid = Txn.txid txn }));
  (* An abort need not be forced: if it is lost, recovery undoes the
     transaction as a loser with the same outcome. *)
  Txn.Manager.finish t.txns txn Txn.Aborted;
  release txn t;
  Txn.txid txn

let committed_txids t = List.rev t.committed_txids
let committed_count t = Txn.Manager.committed t.txns
let aborted_count t = Txn.Manager.aborted t.txns
let latencies t = t.latencies

let log_bytes_per_txn t =
  let committed = committed_count t in
  if committed = 0 then 0.
  else float_of_int (Lsn.to_int (Wal.end_lsn t.wal)) /. float_of_int committed
