(** Priority queue of simulation events.

    A binary min-heap ordered by (time, sequence number). The sequence
    number is assigned on insertion, so two events scheduled for the same
    instant fire in insertion order — this is what makes simulation runs
    deterministic.

    The heap is stored as unboxed parallel arrays, so {!add},
    {!pop_min} and {!drain_one} perform no per-event heap allocation
    (array growth amortises away); only the option-returning
    conveniences {!pop} and {!peek_time} allocate. *)

type 'a t

val create : unit -> 'a t
(** An empty queue with a small preallocated heap. *)

val add : 'a t -> time:Time.t -> 'a -> unit
(** Insert an event payload to fire at [time]. Allocation-free except
    when the heap has to grow. *)

val is_empty : 'a t -> bool

val length : 'a t -> int
(** Events currently queued. *)

val max_length : 'a t -> int
(** High-water mark of {!length} over the queue's lifetime — the
    simultaneity the run actually exercised; free to maintain (one
    compare per insert) and surfaced by the metrics report. *)

val scheduled : 'a t -> int
(** Total events ever inserted (the next sequence number). *)

val min_time : 'a t -> Time.t
(** Time of the earliest event. The queue must be non-empty (checked by
    an assert); callers guard with {!is_empty}. *)

val pop_min : 'a t -> 'a
(** Remove and return the earliest event's payload without boxing it.
    The queue must be non-empty (checked by an assert); callers guard
    with {!is_empty} — this is the allocation-free hot path used by
    [Sim.step]. *)

val drain_one : 'a t -> f:(Time.t -> 'a -> unit) -> bool
(** [drain_one q ~f] pops the earliest event and applies [f time
    payload]; [false] (and [f] not called) when empty. Exceptionless and
    allocation-free provided [f] is a pre-existing closure. *)

val pop : 'a t -> (Time.t * 'a) option
(** Remove and return the earliest event, or [None] if empty.
    Convenience form; allocates the tuple and the [Some]. *)

val peek_time : 'a t -> Time.t option
(** Time of the earliest event without removing it. *)
