(** Failure injection for durability experiments. *)

val power_cut_between :
  Desim.Sim.t -> Power_domain.t -> earliest:Desim.Time.t -> latest:Desim.Time.t -> Desim.Time.t
(** Schedule a power cut at an instant drawn uniformly from
    [\[earliest, latest)] using the simulation's root generator; returns
    the chosen instant. *)

val crash_at : Desim.Sim.t -> Desim.Time.t -> (unit -> unit) -> unit
(** Run an arbitrary crash action (e.g. halting a guest OS) at a given
    instant. *)

val crash_between :
  Desim.Sim.t -> earliest:Desim.Time.t -> latest:Desim.Time.t -> (unit -> unit) -> Desim.Time.t
(** Like {!power_cut_between} for an arbitrary crash action. *)
