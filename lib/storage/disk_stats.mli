(** Per-device operation counters. *)

type t

val create : unit -> t

val record_read : t -> sectors:int -> service:Desim.Time.span -> unit
val record_write : t -> sectors:int -> service:Desim.Time.span -> unit
val record_flush : t -> service:Desim.Time.span -> unit

val reads : t -> int
val writes : t -> int
val flushes : t -> int
val sectors_read : t -> int
val sectors_written : t -> int

val busy : t -> Desim.Time.span
(** Total time the device spent servicing requests. *)

val write_service : t -> Desim.Stats.Sample.t
(** Per-write service times in microseconds. *)

val instance_name : string -> string
(** A per-instance metric label for a device of the given model: the
    first instance created under the ambient metrics registry keeps the
    bare model name, subsequent ones get [model#2], [model#3]… so two
    same-model devices (stripe members, mixed-device stripes) never
    merge their per-device counters. Returns the model unchanged when no
    registry is recording. *)

val pp : Format.formatter -> t -> unit
