open Desim

type violation = { at : Time.t; invariant : string; detail : string }

type snapshot = {
  acked_bytes : int;
  admitted_bytes : int;
  drained_bytes : int;
  accepting : bool;
}

type t = {
  sim : Sim.t;
  logger : Trusted_logger.t;
  mutable seen : violation list;  (* newest first *)
  mutable checks : int;
  mutable previous : snapshot;
  mutable monitor : Process.handle option;
}

let snapshot logger =
  {
    acked_bytes = Trusted_logger.acked_bytes logger;
    admitted_bytes = Trusted_logger.admitted_bytes logger;
    drained_bytes = Trusted_logger.drained_bytes logger;
    accepting = Trusted_logger.accepting logger;
  }

let report t invariant detail =
  t.seen <- { at = Sim.now t.sim; invariant; detail } :: t.seen

let check t =
  t.checks <- t.checks + 1;
  let logger = t.logger in
  let now = snapshot logger in
  let prev = t.previous in
  let buffered = Trusted_logger.buffered_bytes logger in
  let capacity = (Trusted_logger.config logger).Trusted_logger.buffer_bytes in
  if buffered > capacity then
    report t "capacity" (Printf.sprintf "%d buffered > %d capacity" buffered capacity);
  if now.acked_bytes < prev.acked_bytes then
    report t "monotonic-ack"
      (Printf.sprintf "acked went %d -> %d" prev.acked_bytes now.acked_bytes);
  if now.drained_bytes < prev.drained_bytes then
    report t "monotonic-drain"
      (Printf.sprintf "drained went %d -> %d" prev.drained_bytes now.drained_bytes);
  (* Conservation: the drain only writes admitted data, and coalescing
     overlapping sector rewrites can only shrink the byte total. The
     bound is admitted, not acked: with replication the drain races
     ahead of writers still waiting on the remote ack. *)
  if now.drained_bytes > now.admitted_bytes then
    report t "conservation"
      (Printf.sprintf "drained %d exceeds admitted %d" now.drained_bytes
         now.admitted_bytes);
  if now.acked_bytes > now.admitted_bytes then
    report t "conservation"
      (Printf.sprintf "acked %d exceeds admitted %d" now.acked_bytes
         now.admitted_bytes);
  if (not prev.accepting) && now.acked_bytes > prev.acked_bytes then
    report t "admission-closed"
      (Printf.sprintf "acked %d bytes after power-fail"
         (now.acked_bytes - prev.acked_bytes));
  if (not prev.accepting) && now.accepting then
    report t "admission-closed" "logger re-opened after power-fail";
  t.previous <- now

let attach sim ?(interval = Time.ms 1) logger =
  assert (Time.compare_span interval Time.zero_span > 0);
  let t =
    {
      sim;
      logger;
      seen = [];
      checks = 0;
      previous = snapshot logger;
      monitor = None;
    }
  in
  t.monitor <-
    Some
      (Process.spawn sim ~name:"invariant-monitor" (fun () ->
           while true do
             Process.sleep interval;
             check t
           done));
  t

let stop t =
  match t.monitor with
  | Some handle ->
      Process.cancel handle;
      t.monitor <- None
  | None -> ()

let violations t = List.rev t.seen
let ok t = t.seen = []
let checks_performed t = t.checks
