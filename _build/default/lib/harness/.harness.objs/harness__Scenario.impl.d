lib/harness/scenario.ml: Array Dbms Desim Hypervisor List Power Printf Rapilog Sim Storage String Time Workload
