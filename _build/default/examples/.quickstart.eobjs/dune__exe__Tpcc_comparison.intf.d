examples/tpcc_comparison.mli:
