(** CRC-32 (IEEE 802.3 polynomial, the zlib/ethernet variant).

    Used to detect torn log records and corrupt page images after a
    crash. *)

val digest : string -> pos:int -> len:int -> int32
val digest_string : string -> int32
val digest_bytes : bytes -> pos:int -> len:int -> int32

(** {2 Incremental digesting}

    The same CRC computed piecewise, for producers that stream a record
    into a buffer field by field ({!Log_record.encode_into}): the state
    is an untagged native int, every operation is allocation-free, and
    [finish (update ... init)] is bit-identical to the one-shot
    {!digest} of the concatenated bytes. *)

type state = int
(** Raw (pre-inversion) CRC register. *)

val init : state

val update_byte : state -> int -> state
(** Fold one byte (low 8 bits of the argument) into the digest. *)

val update_string : state -> string -> pos:int -> len:int -> state

val finish : state -> int
(** The digest as a non-negative int holding the 32-bit value —
    the same bits {!digest} boxes into an [int32], minus the box. *)
