lib/dbms/engine.mli: Buffer_pool Desim Engine_profile Hypervisor Wal
