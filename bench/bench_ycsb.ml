(* fig9-ycsb: read-fraction sensitivity. RapiLog accelerates commits,
   and only update transactions commit through the log — so sweeping
   the YCSB read fraction shows the gain scaling with the write rate,
   vanishing at the read-only end. *)

open Harness
open Bench_support

let fig9 =
  {
    id = "fig9-ycsb";
    title = "Fig 9: YCSB read-fraction sweep";
    description =
      "YCSB-lite read-fraction sweep: where commit latency stops mattering";
    run =
      (fun ~quick ->
        Report.section "Fig 9: YCSB-lite read-fraction sweep (8 clients, disk, zipf .99)";
        let fractions = if quick then [ 0.0; 0.5; 0.95 ] else [ 0.0; 0.25; 0.5; 0.75; 0.95; 1.0 ] in
        let rows =
          List.map
            (fun fraction ->
              let run m =
                steady
                  Scen.Builder.(
                    start ~base:(base_config ~quick) ()
                    |> mode m |> clients 8
                    |> workload (Scenario.Ycsb Workload.Ycsb_lite.default_config)
                    |> read_fraction fraction |> build)
              in
              let sync = run Scenario.Virt_sync in
              let rapi = run Scenario.Rapilog in
              ( fraction,
                [
                  sync.Experiment.throughput;
                  rapi.Experiment.throughput;
                  rapi.Experiment.throughput /. sync.Experiment.throughput;
                ] ))
            fractions
        in
        Report.series ~title:"throughput vs read fraction" ~x_label:"read frac"
          ~columns:[ "virt-sync txn/s"; "rapilog txn/s"; "speedup" ]
          ~rows;
        Report.note
          "shape target: speedup largest at read fraction 0, converging to ~1x as reads dominate");
  }

let experiments = [ fig9 ]
