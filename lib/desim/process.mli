(** Lightweight simulated processes over OCaml 5 effect handlers.

    A process is an ordinary function that may perform blocking operations
    ({!sleep}, {!suspend}, and everything built on them — semaphores,
    channels, device I/O). Each blocking point captures the continuation
    and hands control back to the {!Sim} event loop; the process resumes
    when its wake-up event fires.

    Blocking operations may only be called from inside a process body;
    calling them elsewhere raises [Not_in_process]. *)

type handle
(** Identity of a spawned process; used for cancellation. *)

exception Cancelled
(** Raised inside a process that is resumed after {!cancel}; treated as
    normal termination by the runner, but [Fun.protect] finalisers run. *)

exception Not_in_process

val spawn : Sim.t -> ?name:string -> (unit -> unit) -> handle
(** [spawn sim body] schedules [body] to start at the current instant. Any
    exception other than {!Cancelled} escaping [body] is recorded and
    re-raised out of the simulation run loop. *)

val name : handle -> string

val is_alive : handle -> bool
(** [false] once the body returned, raised, or was cancelled. *)

val cancel : handle -> unit
(** Marks the process dead. It will receive {!Cancelled} at its next
    resumption (it cannot be interrupted between blocking points, which
    mirrors a thread being killed only at a preemption point). *)

val self : unit -> handle
(** The currently running process. *)

val sleep : Time.span -> unit
(** Block the current process for a duration (>= 0). *)

val yield : unit -> unit
(** Reschedule at the current instant, letting same-time events run. *)

type 'a resumer = 'a -> unit
(** A one-shot wake-up function. Calling it a second time is ignored;
    calling it after the process was cancelled discards the value. *)

val suspend : ('a resumer -> unit) -> 'a
(** [suspend register] blocks the current process. [register] receives the
    resumer and typically stashes it in some wait queue; whoever later
    calls the resumer (from the event loop) wakes the process with the
    given value. *)
