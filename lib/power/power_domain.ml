open Desim

type t = {
  sim : Sim.t;
  psu : Psu.config;
  mutable handlers : (window:Time.span -> unit) list;  (* reverse order *)
  mutable devices : Storage.Block.t list;
  mutable failing : bool;
  mutable dead_at : Time.t option;
}

let create sim psu =
  { sim; psu; handlers = []; devices = []; failing = false; dead_at = None }

let psu t = t.psu
let window t = Psu.window t.psu
let on_power_fail t handler = t.handlers <- handler :: t.handlers
let register_device t device = t.devices <- device :: t.devices

let cut t =
  if not t.failing then begin
    t.failing <- true;
    let window = Psu.window t.psu in
    let dead = Time.add (Sim.now t.sim) window in
    t.dead_at <- Some dead;
    (* Device loss-of-power is queued before the handlers run so that
       anything a handler schedules for the same instant observes the
       devices already dead. *)
    Sim.schedule_at t.sim dead (fun () ->
        List.iter Storage.Block.power_cut t.devices);
    List.iter (fun handler -> handler ~window) (List.rev t.handlers)
  end

(* Machine loss: the box vanishes this instant — no hold-up window, no
   drain race. Devices die first so that handlers (and anything they
   wake at this instant) observe the hardware already dead; the
   handlers still run so software state (logger admission) closes
   consistently, with a zero window. *)
let lose t =
  if not t.failing then begin
    t.failing <- true;
    t.dead_at <- Some (Sim.now t.sim);
    List.iter Storage.Block.power_cut t.devices;
    List.iter (fun handler -> handler ~window:Time.zero_span) (List.rev t.handlers)
  end

let cut_at t time = Sim.schedule_at t.sim time (fun () -> cut t)
let is_failing t = t.failing
let dead_at t = t.dead_at
