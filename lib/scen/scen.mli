(** Scenario-builder DSL: the front door to the harness.

    Every experiment in this repository ultimately runs a
    {!Harness.Scenario.config} — a pure record naming a mode, a device,
    a commit policy, a workload and the timing of the measurement
    window. Historically each bench module assembled that record by
    hand; this module replaces the hand-rolled records with a small
    composable pipeline:

    {[
      Scen.Builder.(
        start () |> mode Harness.Scenario.Rapilog |> nvme |> clients 16
        |> open_loop (Workload.Arrival.Poisson { rate = 400. })
        |> build)
    ]}

    Three properties make the DSL more than sugar:

    - {b Purity}: a builder only ever rewrites the configuration record
      (and an explicit fault schedule riding alongside). No randomness,
      no clocks — the seed is itself an axis — so a built config is a
      pure function of the combinators applied, and two equal pipelines
      produce bit-identical configs ({!digest} certifies it).
    - {b One validator}: {!validate} is the single place inconsistent
      axis combinations are rejected (parallel WAL streams under a
      [Serial] commit policy, a shard tier outside [Rapilog_sharded],
      churn under an open-loop arrival process, …), with actionable
      messages. Bench executables route their flag parsing through
      {!validate_or_exit} so every CLI rejects the same nonsense the
      same way, with exit code 2.
    - {b Inheritance}: because the result is an ordinary
      [Scenario.config], everything composed here — flash crowds,
      diurnal arrivals, churn, hot keys — automatically inherits the
      steady-state metrics, the sampled failure trials and the
      exhaustive crash-surface sweep. New workloads get the full
      verification harness for free. *)

type fault = {
  f_kind : Harness.Crash_surface.kind;
  f_rate : float;
      (** fraction of enumerated event boundaries to explore,
          [0 < f_rate <= 1]; reinterpreted deterministically as a stride by
          {!stride_of_rate}, never as random sampling *)
}
(** One entry of a builder's fault schedule: which crash kind to sweep
    and how densely. The schedule rides {e alongside} the configuration
    (it parameterises {!Harness.Crash_surface.config}, not the scenario
    itself), so adding faults never perturbs the config digest. *)

val stride_of_rate : float -> int
(** [stride_of_rate r] is the crash-sweep stride exploring a fraction
    [r] of the enumerated boundaries: [max 1 (round (1 / r))]. Rate 1.0
    explores every boundary; rate 0.1 every 10th. Deterministic — a
    rate is a coverage knob, not a probability. *)

type key_space =
  | Uniform_keys of int  (** [n] keys, uniformly popular *)
  | Zipf_keys of { n : int; theta : float }
      (** [n] keys under Zipf popularity with exponent [theta]
          (sampled by {!Workload.Key_dist.zipf}); larger [theta] means
          a hotter head — [theta >= 1] concentrates most traffic on a
          handful of hot keys *)
(** The key-population axis of the keyed workloads (Micro and YCSB).
    TPC-C-lite derives its keys from the schema, so {!Builder.keys}
    rejects it. *)

(** The builder pipeline. A {!t} is an immutable value: every
    combinator returns a new builder, so partial pipelines can be
    shared, specialised and fanned out ({!Builder.grid}) without
    aliasing surprises. Combinators that can fail (an unknown device
    name, a key-space on TPC-C) record an error inside the builder
    instead of raising, so a pipeline always composes; {!Builder.build}
    reports every recorded error at once. *)
module Builder : sig
  type t
  (** A configuration under construction: a [Scenario.config] being
      rewritten, a fault schedule, and any errors recorded so far. *)

  val start : ?base:Harness.Scenario.config -> unit -> t
  (** A fresh pipeline over [base] (default {!Harness.Scenario.default})
      with an empty fault schedule. *)

  (** {2 Core axes} *)

  val mode : Harness.Scenario.mode -> t -> t
  (** Select the system configuration under test (rapilog, native-sync,
      …). *)

  val device : Harness.Scenario.device_kind -> t -> t
  (** Select the log/data device model, fully configured. *)

  val hdd : t -> t
  (** {!device} shorthand: the default 7200 rpm disk. *)

  val ssd : t -> t
  (** {!device} shorthand: the default SATA-era SSD. *)

  val nvme : t -> t
  (** {!device} shorthand: the default NVMe drive. *)

  val device_of_name : string -> t -> t
  (** ["hdd"], ["ssd"] or ["nvme"] (their default configs) — the CLI
      spelling of the shorthands above. Unknown names record an
      error. *)

  val profile : Dbms.Engine_profile.t -> t -> t
  (** Select the engine parameter profile (pg-like, innodb-like, …). *)

  val commit_policy : Dbms.Commit_policy.t -> t -> t
  (** Override the profile's commit-flush batching policy, keeping its
      other parameters. *)

  val streams : int -> t -> t
  (** Parallel WAL streams ([Scenario.log_streams]); more than one
      requires the dedicated-log-device layout and a non-[Serial]
      commit policy ({!validate} enforces both). *)

  val clients : int -> t -> t
  (** Closed-loop client count — or, under an open-loop arrival
      process, the size of the worker pool arrivals queue onto. *)

  val think : Desim.Time.span -> t -> t
  (** Closed-loop think time between transactions. *)

  val seed : int64 -> t -> t
  (** Root seed of the simulation's deterministic rng tree. Every
      random choice — workload draws, arrival instants, failure
      sampling — flows from it, so one axis controls replay identity. *)

  val warmup : Desim.Time.span -> t -> t
  (** Time excluded from measurement before the window opens. Set
      timing {e before} applying a {!Workloads} preset: the presets
      read the builder's warmup/duration to place their bursts. *)

  val duration : Desim.Time.span -> t -> t
  (** Length of the measurement window. *)

  val single_disk : bool -> t -> t
  (** Share one physical device between log and data (the cost-saving
      layout whose sync penalty motivates RapiLog) instead of the
      default dedicated log disk. *)

  val spindles : int -> t -> t
  (** Disks striped into the data volume ([Scenario.data_spindles]);
      ignored under {!single_disk}. *)

  val checkpoint : Desim.Time.span option -> t -> t
  (** Checkpoint interval; [None] disables checkpointing. *)

  (** {2 Workload axes} *)

  val workload : Harness.Scenario.workload_kind -> t -> t
  (** Select the transaction generator, fully configured. The
      fine-grained combinators below rewrite the selected generator's
      config in place. *)

  val keys : key_space -> t -> t
  (** Set the key population of a Micro or YCSB workload. Records an
      error on TPC-C-lite (its keys come from the schema). *)

  val values : int -> t -> t
  (** Row payload bytes, for every workload kind. *)

  val read_fraction : float -> t -> t
  (** Fraction of YCSB operations that read instead of update. Records
      an error for the other workload kinds (Micro is update-only,
      TPC-C's mix is fixed). *)

  val arrival : Workload.Arrival.process -> t -> t
  (** How clients offer load: the legacy closed loop, or an open-loop
      arrival process feeding the worker pool. *)

  val open_loop : Workload.Arrival.shape -> t -> t
  (** [arrival (Open_loop shape)]. *)

  val churn : Workload.Churn.schedule option -> t -> t
  (** Join/leave gating of the closed-loop clients; [None] restores the
      always-joined fleet. Meaningless under an open-loop arrival
      process — {!validate} rejects the combination. *)

  (** {2 Fault, replication and tier axes} *)

  val fault : rate:float -> kind:Harness.Crash_surface.kind -> t -> t
  (** Append a crash-sweep entry to the fault schedule: explore
      fraction [rate] of the enumerated boundaries (see
      {!stride_of_rate}) under [kind]. Rates outside [0 < rate <= 1] record an
      error. The schedule is read back with {!faults}; it does not
      perturb the config or its digest. *)

  val net : Net.Replication.config -> t -> t
  (** Replication policy and link shapes, for [Rapilog_replicated]. *)

  val quorum : replicas:int -> quorum:int -> t -> t
  (** Cluster size and ack threshold, for [Rapilog_quorum]; keeps the
      configured per-replica link shapes. *)

  val shards : int -> t -> t
  (** Logger shard count of the multi-tenant tier, for
      [Rapilog_sharded]. *)

  val tenants : int -> t -> t
  (** Tenant population of the multi-tenant tier, for
      [Rapilog_sharded]. *)

  (** {2 Reading a pipeline back} *)

  val peek : t -> Harness.Scenario.config
  (** The configuration as rewritten so far, {e without} validation —
      for inspection and for presets that read one axis to derive
      another. *)

  val faults : t -> fault list
  (** The fault schedule in the order the {!fault} combinator appended
      it. *)

  val errors : t -> string list
  (** Errors recorded by combinators so far, oldest first; empty for a
      healthy pipeline. *)

  val build : t -> Harness.Scenario.config
  (** Validate and return the finished configuration. Raises
      [Invalid_argument] listing {e every} recorded combinator error
      and validation failure — the DSL's one exit, so a bad pipeline
      cannot silently produce a runnable config. *)

  val build_or_exit : t -> Harness.Scenario.config
  (** {!build} for command-line front ends: print the combined
      combinator and validation errors to stderr and [exit 2] — the
      exit code every bench executable reserves for usage errors —
      instead of raising. *)

  val grid : axes:(t -> t) list list -> t -> t list
  (** Cartesian sweep: [grid ~axes base] applies one combinator from
      each axis in every combination, yielding
      [product (List.map List.length axes)] builders. The first axis
      varies slowest (row-major), so
      [grid ~axes:[[a1; a2]; [b1; b2]] base] is
      [[a1 |> b1; a1 |> b2; a2 |> b1; a2 |> b2]] applied to [base] —
      the enumeration order bench tables print in. *)
end

val validate :
  Harness.Scenario.config -> (Harness.Scenario.config, string) result
(** The single consistency check every front end shares. Rejects, with
    an actionable message naming the offending axes:

    - non-positive client counts, spindle counts or stream counts;
    - parallel WAL streams on the shared-single-disk layout, or under
      a [Serial] commit policy (serialised commits cannot feed
      multiple streams);
    - [Rapilog_sharded] with [single_disk] or [log_streams > 1], and a
      non-default shard tier outside [Rapilog_sharded];
    - a non-default replication config outside [Rapilog_replicated],
      a non-default quorum config outside [Rapilog_quorum], and quorum
      bounds ([1 <= quorum <= replicas]);
    - malformed workload parameters (empty key spaces, non-positive
      payloads, read fractions outside [0, 1]);
    - malformed arrival shapes ({!Workload.Arrival.validate_shape}) and
      churn schedules ({!Workload.Churn.validate}), and churn combined
      with an open-loop arrival process;
    - negative warmup or think time, or a non-positive measurement
      window. *)

val validate_exn : Harness.Scenario.config -> Harness.Scenario.config
(** {!validate}, raising [Invalid_argument] on rejection. *)

val validate_or_exit : Harness.Scenario.config -> Harness.Scenario.config
(** {!validate} for command-line front ends: print the message to
    stderr and [exit 2] on rejection, the exit code every bench
    executable reserves for usage errors. *)

val digest : Harness.Scenario.config -> string
(** Hex digest of the configuration's structural content. Two configs
    digest equal iff they are bit-identical data, so the digest
    certifies that a DSL pipeline reproduces a hand-rolled legacy
    record exactly — the presets regression-test themselves with it —
    and gives JSON reports a stable name for "the same cell". *)

val preset : string -> Builder.t
(** [preset name] is the canonical configuration of the named mode
    (["rapilog"], ["native-sync"], … — {!Harness.Scenario.mode_name}
    spellings): {!Harness.Scenario.default} with that mode selected,
    digest-identical to the legacy hand-rolled record. Raises
    [Invalid_argument] for unknown names, listing the valid ones. *)

val preset_names : string list
(** The nine preset names, in {!Harness.Scenario.all_modes} order. *)

(** The open-loop workload library: named load shapes over the
    builder, each a [Builder.t -> Builder.t] pipeline stage. Every
    shape is driven by {!Workload.Arrival} or {!Workload.Churn} — pure
    functions of (seed, time) — so each composes with the crash-surface
    sweep and the parallel fan-out without perturbing determinism.

    The presets read the builder's {e current} warmup/duration to place
    their bursts inside the measurement window, so set timing first:
    [start () |> duration (Time.ms 600) |> Workloads.flash_crowd]. *)
module Workloads : sig
  val flash_crowd : Builder.t -> Builder.t
  (** A flash crowd over the small update-only microbenchmark: steady
      400 arrivals/s stepping ×8 a quarter of the way into the
      measurement window, decaying back over a fifth of the window.
      Open loop, 16 workers — a saturating burst whose backlog shows up
      as sojourn time. *)

  val diurnal : Builder.t -> Builder.t
  (** Sinusoidal day/night arrivals: mean 400/s, amplitude 0.8, two
      full cycles across warmup plus measurement. Open loop, 16
      workers. *)

  val client_churn : Builder.t -> Builder.t
  (** An elastic closed-loop fleet: 16 clients, half joined at any
      instant, staggered join/leave cycles of half the measurement
      window. *)

  val hot_key : Builder.t -> Builder.t
  (** Zipf hot-key skew under steady open-loop load: YCSB over 4096
      keys at theta 1.2 (most traffic on a handful of keys), 20% reads,
      400 arrivals/s. *)

  val steady_twin : Builder.t -> Builder.t
  (** The control cell for a shaped workload: same generator, same key
      space, but offered steadily — a flash crowd or diurnal arrival
      collapses to a homogeneous Poisson at its base/mean rate, and
      churn is removed. Degradation gates compare a shaped cell against
      its steady twin. *)

  val all : (string * (Builder.t -> Builder.t)) list
  (** The four shapes above by name, in the order the scenario grid
      enumerates them. *)
end
