open Desim

type config = {
  page_sectors : int;
  read_latency : Time.span;
  program_latency : Time.span;
  channels : int;
  command_overhead : Time.span;
  capacity_sectors : int;
  sector_size : int;
}

let default =
  {
    page_sectors = 8;
    read_latency = Time.us 60;
    program_latency = Time.us 300;
    channels = 4;
    command_overhead = Time.us 20;
    capacity_sectors = 268_435_456;  (* 128 GiB of 512-byte sectors *)
    sector_size = 512;
  }

type state = {
  config : config;
  media : Block.Media.t;
  rng : Rng.t;
  lanes : Resource.Semaphore.t;
  mutable in_flight : (int * string) option;
  mutable powered : bool;
  journal : Journal.t option;
  journal_id : int;
}

let pages_of state sectors = (sectors + state.config.page_sectors - 1) / state.config.page_sectors

let rounds state pages = (pages + state.config.channels - 1) / state.config.channels

let service state ~per_page ~sectors body =
  Resource.Semaphore.acquire state.lanes;
  Fun.protect ~finally:(fun () -> Resource.Semaphore.release state.lanes)
  @@ fun () ->
  Process.sleep state.config.command_overhead;
  let span = Time.mul_span per_page (rounds state (pages_of state sectors)) in
  body span

let power_cut state =
  state.powered <- false;
  match state.in_flight with
  | Some (lba, data) ->
      state.in_flight <- None;
      Block.Media.write_torn state.media ~rng:state.rng ~lba ~data
  | None -> ()

let create sim ?(model = "ssd") config =
  assert (config.channels > 0 && config.page_sectors > 0);
  let media =
    Block.Media.create ~sector_size:config.sector_size
      ~capacity_sectors:config.capacity_sectors
  in
  let rng = Rng.split (Sim.rng sim) in
  let journal = Journal.recording () in
  let journal_id =
    match journal with
    | Some j ->
        Journal.register_device j ~model ~sector_size:config.sector_size
          ~capacity_sectors:config.capacity_sectors ~rng
    | None -> -1
  in
  let state =
    {
      config;
      media;
      rng;
      lanes = Resource.Semaphore.create sim config.channels;
      in_flight = None;
      powered = true;
      journal;
      journal_id;
    }
  in
  let stats = Disk_stats.create () in
  let m_write =
    Option.map
      (fun reg ->
        Metrics.histogram reg ("device.write:" ^ Disk_stats.instance_name model))
      (Metrics.recording ())
  in
  let timed_read ~lba ~sectors =
    let started = Sim.now sim in
    let data =
      service state ~per_page:config.read_latency ~sectors (fun span ->
          Process.sleep span;
          Block.Media.read media ~lba ~sectors)
    in
    Disk_stats.record_read stats ~sectors ~service:(Time.diff (Sim.now sim) started);
    data
  in
  let timed_write ~lba ~data ~fua:_ =
    let started = Sim.now sim in
    let sectors = String.length data / config.sector_size in
    service state ~per_page:config.program_latency ~sectors (fun span ->
        state.in_flight <- Some (lba, data);
        (match state.journal with
        | Some j ->
            Journal.write_start j sim ~device:state.journal_id ~lba ~sectors
        | None -> ());
        Process.sleep span;
        state.in_flight <- None;
        if state.powered then begin
          Block.Media.write media ~lba ~data;
          match state.journal with
          | Some j ->
              Journal.write_complete j sim ~device:state.journal_id ~lba ~sectors
                ~data
          | None -> ()
        end);
    let service = Time.diff (Sim.now sim) started in
    (match m_write with
    | Some h -> Metrics.Histogram.observe_span h service
    | None -> ());
    Disk_stats.record_write stats ~sectors ~service
  in
  let ops =
    {
      Block.op_read = timed_read;
      op_write = timed_write;
      op_flush =
        (fun () ->
          Process.sleep config.command_overhead;
          Disk_stats.record_flush stats ~service:config.command_overhead);
      op_power_cut = (fun () -> power_cut state);
      op_durable_read = (fun ~lba ~sectors -> Block.Media.read media ~lba ~sectors);
      op_durable_extent = (fun () -> Block.Media.extent media);
    }
  in
  Block.make ~journal_id:state.journal_id
    ~info:
      {
        Block.model;
        sector_size = config.sector_size;
        capacity_sectors = config.capacity_sectors;
      }
    ~stats ~ops ()
