examples/quickstart.mli:
