type t =
  | Begin of { txid : int }
  | Update of { txid : int; key : int; before : string; after : string }
  | Commit of { txid : int }
  | Abort of { txid : int }
  | Checkpoint of { redo_lsn : Lsn.t }
  | Noop of { filler : int }
  | Commit_multi of { txid : int; deps : int array }
  | Abort_multi of { txid : int; deps : int array }

let magic = 0xA55A

(* Framing: a 7-byte prefix (magic, kind, len), the body, then a trailing
   CRC-32 of everything from the kind byte onwards. Keeping the CRC last
   makes its covered region contiguous, so no temporary buffer is needed
   to check it. [header_size] is the total framing overhead. *)
let prefix_size = 7
let trailer_size = 4
let header_size = prefix_size + trailer_size
let max_body = 1 lsl 20

let pp fmt = function
  | Begin { txid } -> Format.fprintf fmt "Begin(%d)" txid
  | Update { txid; key; before; after } ->
      Format.fprintf fmt "Update(txid=%d key=%d %dB->%dB)" txid key
        (String.length before) (String.length after)
  | Commit { txid } -> Format.fprintf fmt "Commit(%d)" txid
  | Abort { txid } -> Format.fprintf fmt "Abort(%d)" txid
  | Checkpoint { redo_lsn } -> Format.fprintf fmt "Checkpoint(%a)" Lsn.pp redo_lsn
  | Noop { filler } -> Format.fprintf fmt "Noop(%d)" filler
  | Commit_multi { txid; deps } ->
      Format.fprintf fmt "CommitV(txid=%d deps=[%s])" txid
        (String.concat ";" (Array.to_list (Array.map string_of_int deps)))
  | Abort_multi { txid; deps } ->
      Format.fprintf fmt "AbortV(txid=%d deps=[%s])" txid
        (String.concat ";" (Array.to_list (Array.map string_of_int deps)))

let kind_code = function
  | Begin _ -> 1
  | Update _ -> 2
  | Commit _ -> 3
  | Abort _ -> 4
  | Checkpoint _ -> 5
  | Noop _ -> 6
  | Commit_multi _ -> 7
  | Abort_multi _ -> 8

(* The multi-stream outcome records are fixed-width in the stream count:
   the engine computes a commit record's end LSN *before* appending it
   (the record's own dependency slot includes itself), which only works
   because the size does not depend on the dependency values. *)
let body_size = function
  | Begin _ | Commit _ | Abort _ -> 8
  | Update { before; after; _ } -> 8 + 8 + 4 + String.length before + 4 + String.length after
  | Checkpoint _ -> 8
  | Noop { filler } -> filler
  | Commit_multi { deps; _ } | Abort_multi { deps; _ } -> 8 + 1 + (8 * Array.length deps)

let encoded_size t = header_size + body_size t

let encode_body t body =
  let set64 pos v = Bytes.set_int64_le body pos (Int64.of_int v) in
  match t with
  | Begin { txid } | Commit { txid } | Abort { txid } -> set64 0 txid
  | Checkpoint { redo_lsn } -> set64 0 (Lsn.to_int redo_lsn)
  | Noop _ -> ()
  | Update { txid; key; before; after } ->
      set64 0 txid;
      set64 8 key;
      Bytes.set_int32_le body 16 (Int32.of_int (String.length before));
      Bytes.blit_string before 0 body 20 (String.length before);
      let after_pos = 20 + String.length before in
      Bytes.set_int32_le body after_pos (Int32.of_int (String.length after));
      Bytes.blit_string after 0 body (after_pos + 4) (String.length after)
  | Commit_multi { txid; deps } | Abort_multi { txid; deps } ->
      assert (Array.length deps <= 255);
      set64 0 txid;
      Bytes.set_uint8 body 8 (Array.length deps);
      Array.iteri (fun i dep -> set64 (9 + (8 * i)) dep) deps

let encode t =
  let blen = body_size t in
  assert (blen <= max_body);
  let buf = Bytes.make (header_size + blen) '\000' in
  let body = Bytes.make blen '\000' in
  encode_body t body;
  Bytes.set_uint16_le buf 0 magic;
  Bytes.set_uint8 buf 2 (kind_code t);
  Bytes.set_int32_le buf 3 (Int32.of_int blen);
  Bytes.blit body 0 buf prefix_size blen;
  Bytes.set_int32_le buf (prefix_size + blen)
    (Crc32.digest_bytes buf ~pos:2 ~len:(prefix_size - 2 + blen));
  Bytes.unsafe_to_string buf

(* Single-pass encoding: each field goes into the stream buffer and the
   running CRC together, little-endian, with no intermediate record
   buffer and no boxed int32/int64 temporaries. This is the per-append
   hot path of every WAL stream — with the buffer warm (no growth) it
   allocates nothing, which bench/perf.exe gates. Loops are structured
   as tail recursion rather than closures so no environment is built. *)

let[@inline] put_byte buf crc b =
  Buffer.add_uint8 buf b;
  Crc32.update_byte crc b

let put_u32 buf crc v =
  let crc = put_byte buf crc (v land 0xFF) in
  let crc = put_byte buf crc ((v lsr 8) land 0xFF) in
  let crc = put_byte buf crc ((v lsr 16) land 0xFF) in
  put_byte buf crc ((v lsr 24) land 0xFF)

let put_u64 buf crc v =
  let crc = put_u32 buf crc (v land 0xFFFFFFFF) in
  put_u32 buf crc ((v lsr 32) land 0xFFFFFFFF)

let put_string buf crc s =
  Buffer.add_string buf s;
  Crc32.update_string crc s ~pos:0 ~len:(String.length s)

let rec put_zeros buf crc n =
  if n = 0 then crc else put_zeros buf (put_byte buf crc 0) (n - 1)

let rec put_deps buf crc deps i =
  if i = Array.length deps then crc
  else put_deps buf (put_u64 buf crc (Array.unsafe_get deps i)) deps (i + 1)

let encode_into t buf =
  let blen = body_size t in
  assert (blen <= max_body);
  Buffer.add_uint16_le buf magic;
  let crc = put_byte buf Crc32.init (kind_code t) in
  let crc = put_u32 buf crc blen in
  let crc =
    match t with
    | Begin { txid } | Commit { txid } | Abort { txid } -> put_u64 buf crc txid
    | Checkpoint { redo_lsn } -> put_u64 buf crc (Lsn.to_int redo_lsn)
    | Noop { filler } -> put_zeros buf crc filler
    | Update { txid; key; before; after } ->
        let crc = put_u64 buf crc txid in
        let crc = put_u64 buf crc key in
        let crc = put_u32 buf crc (String.length before) in
        let crc = put_string buf crc before in
        let crc = put_u32 buf crc (String.length after) in
        put_string buf crc after
    | Commit_multi { txid; deps } | Abort_multi { txid; deps } ->
        assert (Array.length deps <= 255);
        let crc = put_u64 buf crc txid in
        let crc = put_byte buf crc (Array.length deps) in
        put_deps buf crc deps 0
  in
  let v = Crc32.finish crc in
  Buffer.add_uint8 buf (v land 0xFF);
  Buffer.add_uint8 buf ((v lsr 8) land 0xFF);
  Buffer.add_uint8 buf ((v lsr 16) land 0xFF);
  Buffer.add_uint8 buf ((v lsr 24) land 0xFF)

let u64 s pos = Int64.to_int (String.get_int64_le s pos)
let u32 s pos = Int32.to_int (String.get_int32_le s pos)

let decode_body kind s ~pos ~len =
  let fits n = len >= n in
  match kind with
  | 1 when fits 8 -> Some (Begin { txid = u64 s pos })
  | 3 when fits 8 -> Some (Commit { txid = u64 s pos })
  | 4 when fits 8 -> Some (Abort { txid = u64 s pos })
  | 5 when fits 8 -> Some (Checkpoint { redo_lsn = Lsn.of_int (u64 s pos) })
  | 6 -> Some (Noop { filler = len })
  | 2 when fits 20 ->
      let blen = u32 s (pos + 16) in
      if blen < 0 || 20 + blen + 4 > len then None
      else begin
        let alen = u32 s (pos + 20 + blen) in
        if alen < 0 || 20 + blen + 4 + alen <> len then None
        else
          Some
            (Update
               {
                 txid = u64 s pos;
                 key = u64 s (pos + 8);
                 before = String.sub s (pos + 20) blen;
                 after = String.sub s (pos + 24 + blen) alen;
               })
      end
  | (7 | 8) when fits 9 ->
      let count = String.get_uint8 s (pos + 8) in
      if len <> 9 + (8 * count) then None
      else begin
        let deps = Array.init count (fun i -> u64 s (pos + 9 + (8 * i))) in
        let txid = u64 s pos in
        if kind = 7 then Some (Commit_multi { txid; deps })
        else Some (Abort_multi { txid; deps })
      end
  | _ -> None

let decode s ~pos =
  let remaining = String.length s - pos in
  if remaining < header_size then None
  else if String.get_uint16_le s pos <> magic then None
  else begin
    let kind = String.get_uint8 s (pos + 2) in
    let blen = u32 s (pos + 3) in
    if blen < 0 || blen > max_body || remaining < header_size + blen then None
    else begin
      let crc = String.get_int32_le s (pos + prefix_size + blen) in
      if Crc32.digest s ~pos:(pos + 2) ~len:(prefix_size - 2 + blen) <> crc then
        None
      else
        match decode_body kind s ~pos:(pos + prefix_size) ~len:blen with
        | Some record -> Some (record, header_size + blen)
        | None -> None
    end
  end

let decode_stream s =
  let rec scan pos acc =
    match decode s ~pos with
    | Some (record, size) ->
        scan (pos + size) ((record, Lsn.of_int (pos + size)) :: acc)
    | None -> List.rev acc
  in
  scan 0 []
