(** NVMe / zoned-append device model.

    Service time has no positional component: a write costs the
    submission overhead plus one program round per
    [ceil (sectors / page_sectors)] page, at microsecond scale — two to
    three orders of magnitude below a disk rotation and an order below
    the SATA-era {!Ssd}. Up to [queue_depth] requests are in flight
    concurrently; requests beyond the queue depth wait FIFO.

    The device keeps a per-zone append pointer ([zone_sectors]-sized
    zones) purely as an accounting surface: writes at the pointer count
    as zone appends, writes behind it as rewinds (the in-place pattern
    zoned namespaces forbid). The counters surface per instance as
    [device.zone_appends:<instance>] / [device.zone_rewinds:<instance>]
    in the metrics registry, so a log layout can be judged append-clean
    without changing the block API.

    Torn-tail semantics on power cut follow the other models — every
    in-flight program persists a uniformly random prefix of its sectors
    — except that with [queue_depth > 1] {e several} writes can be in
    flight and each tears independently, with rng draws consumed in
    submission order (the order the crash sweep's reconstruction
    replays). *)

type config = {
  queue_depth : int;  (** concurrent in-flight requests *)
  submit_overhead : Desim.Time.span;
      (** doorbell + controller cost per command *)
  program_latency : Desim.Time.span;  (** per-page program *)
  read_latency : Desim.Time.span;  (** per-page read *)
  page_sectors : int;  (** flash page size in sectors *)
  zone_sectors : int;
      (** zone size in sectors; must divide [capacity_sectors] *)
  capacity_sectors : int;
  sector_size : int;
}

val default : config
(** 32-deep queue, 8 us submission, 12 us page program, 4 KiB pages,
    32 MiB zones, 32 GiB capacity: a small datacenter ZNS drive. *)

val create : Desim.Sim.t -> ?model:string -> config -> Block.t
(** The device derives its torn-write randomness from the simulation's
    root generator and, when a {!Desim.Journal} is recording, registers
    itself and journals every write's program start and media
    completion. *)

(** {2 Pure timing} — shared between the live request path and the
    crash-surface journal reconstruction, exactly as for
    {!Hdd.write_timeline}. *)

val service_ns : config -> sectors:int -> int
(** Full service time of one write in nanoseconds (submission overhead
    plus page programs); pure integer arithmetic, allocation-free. *)

type timeline = {
  wt_start_ns : int;  (** program start: a power cut from here tears *)
  wt_complete_ns : int;  (** media write instant *)
}

val write_timeline : config -> now_ns:int -> sectors:int -> timeline
(** Timing of a write submitted at [now_ns] with a free queue slot:
    submission overhead, then page programs. Exactly the arithmetic the
    live {!create}d device performs. *)

(** {2 Zone accounting} — exposed for the allocation gate in
    [bench/perf.exe], which drives {!Zones.note_write} directly to show
    the per-write hot path allocates nothing. *)

module Zones : sig
  type t

  val create : config -> t

  val note_write : t -> lba:int -> sectors:int -> unit
  (** Advance the target zone's append pointer (or count a rewind);
      integer arithmetic only, zero allocation. *)

  val appends : t -> int
  val rewinds : t -> int
end
