open Desim

type config = { capacity_bytes : int; admit_bandwidth : float }

let default = { capacity_bytes = 32 * 1024 * 1024; admit_bandwidth = 200e6 }

type entry = { gen : int; lba : int; data : string }

type state = {
  sim : Sim.t;
  config : config;
  device : Block.t;
  overlay : (int, int * string) Hashtbl.t;  (* sector -> (gen, contents) *)
  pending : entry Queue.t;
  mutable bytes : int;
  mutable next_gen : int;
  space_freed : Resource.Condition.t;
  drained : Resource.Condition.t;
  arrived : Resource.Condition.t;
  mutable powered : bool;
}

let sector_size state = (Block.info state.device).Block.sector_size

let copy_in_span state len =
  Time.span_of_float_sec (float_of_int len /. state.config.admit_bandwidth)

let insert state ~lba ~data =
  let gen = state.next_gen in
  state.next_gen <- gen + 1;
  let ss = sector_size state in
  for i = 0 to (String.length data / ss) - 1 do
    Hashtbl.replace state.overlay (lba + i) (gen, String.sub data (i * ss) ss)
  done;
  Queue.push { gen; lba; data } state.pending;
  state.bytes <- state.bytes + String.length data;
  Resource.Condition.signal state.arrived

let destage_batch_limit_bytes = 1024 * 1024

(* Merge the head run of overlapping-or-adjacent entries into one device
   write — a disk cache destages whole cache lines, it does not replay
   the host's write pattern (which here rewrites the same tail sector
   over and over, one rotation each). *)
let take_batch state head =
  let ss = sector_size state in
  let sectors data = String.length data / ss in
  let pieces = ref [ head ] in
  let base = head.lba in
  let end_lba = ref (base + sectors head.data) in
  let batch_bytes = ref (String.length head.data) in
  let continue = ref true in
  while !continue do
    match Queue.peek_opt state.pending with
    | Some entry
      when entry.lba >= base
           && entry.lba <= !end_lba
           && !batch_bytes + String.length entry.data <= destage_batch_limit_bytes ->
        ignore (Queue.pop state.pending);
        pieces := entry :: !pieces;
        end_lba := max !end_lba (entry.lba + sectors entry.data);
        batch_bytes := !batch_bytes + String.length entry.data
    | Some _ | None -> continue := false
  done;
  let merged = Bytes.make ((!end_lba - base) * ss) '\000' in
  List.iter
    (fun entry ->
      Bytes.blit_string entry.data 0 merged ((entry.lba - base) * ss)
        (String.length entry.data))
    (List.rev !pieces);
  (base, Bytes.unsafe_to_string merged, List.rev !pieces)

let destage_entries state entries =
  let ss = sector_size state in
  List.iter
    (fun entry ->
      for i = 0 to (String.length entry.data / ss) - 1 do
        match Hashtbl.find_opt state.overlay (entry.lba + i) with
        | Some (gen, _) when gen = entry.gen ->
            Hashtbl.remove state.overlay (entry.lba + i)
        | Some _ | None -> ()
      done;
      state.bytes <- state.bytes - String.length entry.data)
    entries;
  Resource.Condition.broadcast state.space_freed;
  if Queue.is_empty state.pending then Resource.Condition.broadcast state.drained

let destager state () =
  while state.powered do
    match Queue.take_opt state.pending with
    | Some head ->
        let lba, data, entries = take_batch state head in
        Block.write state.device ~lba data;
        if state.powered then destage_entries state entries
    | None -> Resource.Condition.wait state.arrived
  done

let cached_write state ~lba ~data =
  let len = String.length data in
  Process.sleep (copy_in_span state len);
  while state.bytes + len > state.config.capacity_bytes do
    Resource.Condition.wait state.space_freed
  done;
  if state.powered then insert state ~lba ~data

let cached_read state ~lba ~sectors =
  let base = Block.read state.device ~lba ~sectors in
  (* Newer cached sectors shadow the media contents. *)
  if Hashtbl.length state.overlay = 0 then base
  else begin
    let ss = sector_size state in
    let buf = Bytes.of_string base in
    for i = 0 to sectors - 1 do
      match Hashtbl.find_opt state.overlay (lba + i) with
      | Some (_, contents) -> Bytes.blit_string contents 0 buf (i * ss) ss
      | None -> ()
    done;
    Bytes.unsafe_to_string buf
  end

let cache_flush state =
  while not (Queue.is_empty state.pending) do
    Resource.Condition.wait state.drained
  done;
  Block.flush state.device

let power_cut state =
  state.powered <- false;
  Hashtbl.reset state.overlay;
  Queue.clear state.pending;
  state.bytes <- 0;
  Block.power_cut state.device

let wrap sim config device =
  assert (config.capacity_bytes > 0 && config.admit_bandwidth > 0.);
  let state =
    {
      sim;
      config;
      device;
      overlay = Hashtbl.create 1024;
      pending = Queue.create ();
      bytes = 0;
      next_gen = 0;
      space_freed = Resource.Condition.create sim;
      drained = Resource.Condition.create sim;
      arrived = Resource.Condition.create sim;
      powered = true;
    }
  in
  ignore (Process.spawn sim ~name:"write-cache-destager" (destager state));
  let stats = Disk_stats.create () in
  let ops =
    {
      Block.op_read =
        (fun ~lba ~sectors ->
          let started = Sim.now sim in
          let data = cached_read state ~lba ~sectors in
          Disk_stats.record_read stats ~sectors
            ~service:(Time.diff (Sim.now sim) started);
          data);
      op_write =
        (fun ~lba ~data ~fua ->
          let started = Sim.now sim in
          if fua then Block.write state.device ~fua:true ~lba data
          else cached_write state ~lba ~data;
          Disk_stats.record_write stats
            ~sectors:(String.length data / sector_size state)
            ~service:(Time.diff (Sim.now sim) started));
      op_flush =
        (fun () ->
          let started = Sim.now sim in
          cache_flush state;
          Disk_stats.record_flush stats ~service:(Time.diff (Sim.now sim) started));
      op_power_cut = (fun () -> power_cut state);
      op_durable_read = (fun ~lba ~sectors -> Block.durable_read device ~lba ~sectors);
      op_durable_extent = (fun () -> Block.durable_extent device);
    }
  in
  let info = Block.info device in
  Block.make
    ~info:{ info with Block.model = info.Block.model ^ "+wcache" }
    ~stats ~ops ()
