open Desim

type kind = Os_crash | Power_cut | Power_cut_tight

let kind_name = function
  | Os_crash -> "os-crash"
  | Power_cut -> "power-cut"
  | Power_cut_tight -> "power-cut-tight"

let all_kinds = [ Os_crash; Power_cut; Power_cut_tight ]

let kind_of_name name =
  List.find_opt (fun kind -> String.equal (kind_name kind) name) all_kinds

type config = {
  scenario : Scenario.config;
  window_start : Time.span;
  window_length : Time.span;
  stride : int;
  kinds : kind list;
  tight_window : Time.span;
  tight_buffer_bytes : int;
}

let default scenario =
  {
    scenario;
    window_start = Time.ms 5;
    window_length = Time.ms 40;
    stride = 1;
    kinds = all_kinds;
    tight_window = Time.ms 20;
    tight_buffer_bytes = 128 * 1024;
  }

(* The tight-budget kind changes the machine under test: a smaller PSU
   hold-up window and a trusted buffer shrunk to fit it. Everything that
   runs before the cut is affected (a smaller buffer backpressures
   earlier), so each kind enumerates its own effective configuration —
   boundary indices are only meaningful against the world they were
   counted in. *)
let effective_scenario config = function
  | Os_crash | Power_cut -> config.scenario
  | Power_cut_tight ->
      {
        config.scenario with
        Scenario.psu = Power.Psu.of_window config.tight_window;
        logger =
          {
            config.scenario.Scenario.logger with
            Rapilog.Trusted_logger.buffer_bytes = config.tight_buffer_bytes;
          };
      }

type enumeration = {
  e_kind : kind;
  e_window_start_ns : int;
  e_window_end_ns : int;
  e_boundaries : int;
  e_candidates : (int * int) array;
}

let enumerate config kind =
  if config.stride < 1 then invalid_arg "Crash_surface: stride must be >= 1";
  let built = Scenario.build (effective_scenario config kind) in
  let sim = built.Scenario.sim in
  let track = Driver.make_tracking () in
  (* The crash replays run with the invariants monitor attached, and the
     monitor schedules its own poll events — so the enumeration replay
     must carry it too, or event indices would name different instants
     in the two replays. The monitor is simply abandoned with the rest
     of the simulation when enumeration stops. *)
  let (_ : Rapilog.Invariants.t option) =
    Option.map (Rapilog.Invariants.attach sim) built.Scenario.logger
  in
  let window = ref None in
  Driver.spawn_loader built track ~after_load:(fun () ->
      let ws = Time.add (Sim.now sim) config.window_start in
      window := Some (ws, Time.add ws config.window_length);
      Driver.spawn_clients built track);
  let boundaries = ref 0 in
  let candidates = ref [] in
  let stop = ref false in
  while (not !stop) && Sim.step sim do
    match !window with
    | None -> ()
    | Some (ws, we) ->
        let now = Sim.now sim in
        if Time.(we <= now) then stop := true
        else if Time.(ws <= now) then begin
          (* The boundary after the [n]-th executed event: the clock
             stands at that event's time and the next event has not run.
             Boundaries between same-instant events count too — that is
             what makes the sweep finer than time-based sampling. *)
          if !boundaries mod config.stride = 0 then
            candidates :=
              (Sim.events_executed sim, Time.to_ns now) :: !candidates;
          incr boundaries
        end
  done;
  let ws, we =
    match !window with
    | Some (ws, we) -> (Time.to_ns ws, Time.to_ns we)
    | None -> failwith "Crash_surface.enumerate: load phase never completed"
  in
  {
    e_kind = kind;
    e_window_start_ns = ws;
    e_window_end_ns = we;
    e_boundaries = !boundaries;
    e_candidates = Array.of_list (List.rev !candidates);
  }

type verdict = {
  v_kind : kind;
  v_event_index : int;
  v_at_ns : int;
  v_acked : int;
  v_lost : int;
  v_extra : int;
  v_state_exact : bool;
  v_diff_count : int;
  v_invariant_violations : int;
  v_buffered_at_cut : int;
  v_stats : Dbms.Recovery.replay_stats;
  v_contract_ok : bool;
}

let run_point config kind ~event_index ~at_ns =
  let built = Scenario.build (effective_scenario config kind) in
  let sim = built.Scenario.sim in
  let track = Driver.make_tracking () in
  (* The runtime monitor rides along exactly as in the sampled failure
     experiments; it must be stopped once the failure settles or its
     self-rescheduling would keep the event loop alive forever. *)
  let monitor = Option.map (Rapilog.Invariants.attach sim) built.Scenario.logger in
  let stop_monitor () = Option.iter Rapilog.Invariants.stop monitor in
  Driver.spawn_loader built track ~after_load:(fun () ->
      Driver.spawn_clients built track);
  if not (Sim.run_to_event sim event_index) then
    failwith
      (Printf.sprintf "Crash_surface: event boundary %d beyond simulation end"
         event_index);
  (* Replay-determinism cross-check: the boundary enumerated in one
     replay must fall at the identical instant in this one. *)
  let now_ns = Time.to_ns (Sim.now sim) in
  if now_ns <> at_ns then
    failwith
      (Printf.sprintf
         "Crash_surface: replay diverged at event %d: enumerated %d ns, \
          replayed %d ns"
         event_index at_ns now_ns);
  let buffered_at_cut =
    match built.Scenario.logger with
    | Some logger -> Rapilog.Trusted_logger.buffered_bytes logger
    | None -> -1
  in
  (match kind with
  | Os_crash -> (
      Hypervisor.Vmm.crash_guest built.Scenario.vmm;
      (* The logger outlives the guest: wait for its drain. *)
      match built.Scenario.logger with
      | Some logger ->
          ignore
            (Process.spawn sim ~name:"quiesce" (fun () ->
                 Rapilog.Trusted_logger.quiesce logger;
                 stop_monitor ()))
      | None -> stop_monitor ())
  | Power_cut | Power_cut_tight ->
      Power.Power_domain.cut built.Scenario.power;
      let dead =
        match Power.Power_domain.dead_at built.Scenario.power with
        | Some dead -> dead
        | None -> assert false
      in
      (* Just before hold-up expiry the machine stops executing (the
         guest halts); nothing is acknowledged at or after the instant
         the devices lose power. Same discipline as
         {!Experiment.run_failure}. *)
      Sim.schedule_at sim
        (Time.add dead (Time.ns (-1000)))
        (fun () -> Hypervisor.Vmm.crash_guest built.Scenario.vmm);
      Sim.schedule_at sim (Time.add dead (Time.ms 2)) stop_monitor);
  Sim.run sim;
  let recovery =
    Dbms.Recovery.run ~log_device:built.Scenario.log_physical
      ~data_device:built.Scenario.data_physical
      ~wal_config:built.Scenario.wal_config
      ~pool_config:built.Scenario.config.Scenario.pool
  in
  let audit = Audit.check ~model:track.Driver.model ~acked:track.Driver.acked ~recovery in
  let invariant_violations =
    match monitor with
    | Some monitor -> List.length (Rapilog.Invariants.violations monitor)
    | None -> 0
  in
  let lost = List.length audit.Audit.durability.Rapilog.Durability.lost in
  {
    v_kind = kind;
    v_event_index = event_index;
    v_at_ns = at_ns;
    v_acked = List.length track.Driver.acked;
    v_lost = lost;
    v_extra = List.length audit.Audit.durability.Rapilog.Durability.extra;
    v_state_exact = audit.Audit.state_exact;
    v_diff_count = audit.Audit.diff_count;
    v_invariant_violations = invariant_violations;
    v_buffered_at_cut = buffered_at_cut;
    v_stats = Dbms.Recovery.stats recovery;
    v_contract_ok =
      Rapilog.Durability.holds audit.Audit.durability
      && audit.Audit.state_exact
      && invariant_violations = 0;
  }

type kind_summary = {
  k_kind : kind;
  k_boundaries : int;
  k_explored : int;
  k_contract_breaks : int;
  k_lost : int;
}

type result = {
  r_mode : Scenario.mode;
  r_stride : int;
  r_kinds : kind_summary list;
  r_total_boundaries : int;
  r_explored : int;
  r_contract_breaks : int;
  r_lost_total : int;
  r_verdicts : verdict list;
}

let sweep ?jobs config =
  (* Enumeration is one serial replay per kind; the crash points are the
     fan-out. Each point is an independent deterministic simulation, so
     {!Parallel.map} returns verdicts bit-identical to a serial run. *)
  let enums = List.map (fun kind -> enumerate config kind) config.kinds in
  let tasks =
    List.concat_map
      (fun e ->
        List.map
          (fun (index, at) -> (e.e_kind, index, at))
          (Array.to_list e.e_candidates))
      enums
  in
  let verdicts =
    Parallel.map ?jobs
      (fun (kind, event_index, at_ns) ->
        run_point config kind ~event_index ~at_ns)
      tasks
  in
  let summary_of e =
    let of_kind = List.filter (fun v -> v.v_kind = e.e_kind) verdicts in
    {
      k_kind = e.e_kind;
      k_boundaries = e.e_boundaries;
      k_explored = List.length of_kind;
      k_contract_breaks =
        List.length (List.filter (fun v -> not v.v_contract_ok) of_kind);
      k_lost = List.fold_left (fun acc v -> acc + v.v_lost) 0 of_kind;
    }
  in
  let kinds = List.map summary_of enums in
  {
    r_mode = config.scenario.Scenario.mode;
    r_stride = config.stride;
    r_kinds = kinds;
    r_total_boundaries =
      List.fold_left (fun acc k -> acc + k.k_boundaries) 0 kinds;
    r_explored = List.fold_left (fun acc k -> acc + k.k_explored) 0 kinds;
    r_contract_breaks =
      List.fold_left (fun acc k -> acc + k.k_contract_breaks) 0 kinds;
    r_lost_total = List.fold_left (fun acc k -> acc + k.k_lost) 0 kinds;
    r_verdicts = verdicts;
  }
