(** Priority queue of simulation events.

    A binary min-heap ordered by (time, sequence number). The sequence
    number is assigned on insertion, so two events scheduled for the same
    instant fire in insertion order — this is what makes simulation runs
    deterministic. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> time:Time.t -> 'a -> unit
(** Insert an event payload to fire at [time]. *)

val pop : 'a t -> (Time.t * 'a) option
(** Remove and return the earliest event, or [None] if empty. *)

val peek_time : 'a t -> Time.t option
(** Time of the earliest event without removing it. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
