open Desim

type op =
  | Put of { key : int; value : string }
  | Get of { key : int }
  | Delete of { key : int }

type txn_result = {
  txid : int;
  writes : (int * string option) list;
  reads : (int * string option) list;
  latency : Time.span;
}

(* Commit-path stage handles ({!Desim.Metrics} discipline: resolved once
   at create, [None] when metrics are off). [commit.exec] covers client
   submit to commit-record append; [commit.force] the wait for log
   durability (or the ack point, for async commit); [commit.total] the
   whole client-visible latency of a write transaction. *)
type engine_metrics = {
  m_exec : Metrics.Histogram.t;
  m_force : Metrics.Histogram.t;
  m_total : Metrics.Histogram.t;
  m_commits : Metrics.Counter.t;
}

type t = {
  vmm : Hypervisor.Vmm.t;
  profile : Engine_profile.t;
  async_commit : bool;
  wal : Wal.t;
  pool : Buffer_pool.t;
  streams : int;  (* Wal.stream_count, cached for the append path *)
  keys_per_page : int;  (* page partitioning decides a key's stream *)
  locks : Lock_table.t;
  txns : Txn.Manager.t;
  commit_serialiser : Resource.Mutex.t;  (* used by the Serial policy *)
  mutable committed_txids : int list;  (* descending *)
  latencies : Stats.Sample.t;
  metrics : engine_metrics option;
}

let create ~vmm ~profile ?(async_commit = false) ?first_txid ~wal ~pool () =
  let sim = Hypervisor.Vmm.sim vmm in
  Wal.set_policy wal profile.Engine_profile.commit_policy;
  {
    vmm;
    profile;
    async_commit;
    wal;
    pool;
    streams = Wal.stream_count wal;
    keys_per_page = (Buffer_pool.config pool).Buffer_pool.keys_per_page;
    locks = Lock_table.create sim;
    txns = Txn.Manager.create ?first_txid ();
    commit_serialiser = Resource.Mutex.create sim;
    committed_txids = [];
    latencies = Stats.Sample.create ();
    metrics =
      Option.map
        (fun reg ->
          {
            m_exec = Metrics.histogram reg "commit.exec";
            m_force = Metrics.histogram reg "commit.force";
            m_total = Metrics.histogram reg "commit.total";
            m_commits = Metrics.counter reg "engine.write_commits";
          })
        (Metrics.recording ());
  }

let spawn_wal_writer t domain ~interval =
  assert (Time.compare_span interval Time.zero_span > 0);
  Hypervisor.Domain.spawn domain ~name:"wal-writer" (fun () ->
      while true do
        Process.sleep interval;
        for s = 0 to t.streams - 1 do
          Wal.force ~stream:s t.wal (Wal.end_lsn ~stream:s t.wal)
        done
      done)

(* Multi-stream routing: a page's records all live on one stream (page
   id mod streams), so the per-stream page-LSN guards recovery relies on
   stay sound; a transaction's outcome record lives on its home stream
   (txid mod streams). Pure integer arithmetic — the stream-append
   decision is on the commit hot path and must not allocate. *)
let stream_of_key t key =
  if t.streams = 1 then 0
  else Page.page_of_key ~keys_per_page:t.keys_per_page key mod t.streams

let home_stream t txid = if t.streams = 1 then 0 else txid mod t.streams

let no_deps = [||]

let profile t = t.profile
let wal t = t.wal
let pool t = t.pool

let write_set ops =
  (* Lock acquisition in key order prevents deadlock; the last write to a
     key within one transaction wins. A [None] value is a delete. *)
  let last = Hashtbl.create 8 in
  List.iter
    (function
      | Put { key; value } ->
          assert (String.length value > 0);
          Hashtbl.replace last key (Some value)
      | Delete { key } -> Hashtbl.replace last key None
      | Get _ -> ())
    ops;
  let writes = Hashtbl.fold (fun key value acc -> (key, value) :: acc) last [] in
  List.sort (fun (a, _) (b, _) -> Int.compare a b) writes

let read_set ops =
  List.filter_map (function Get { key } -> Some key | Put _ | Delete _ -> None) ops

let apply_update t txn ~deps ~key ~value =
  Buffer_pool.with_page t.pool ~key (fun page ->
      let before = Option.value (Page.get page ~key) ~default:"" in
      Txn.record_update txn ~key ~before;
      let stream = stream_of_key t key in
      (* An empty after-image encodes the delete, mirroring the empty
         before-image for "key did not exist". *)
      let after = Option.value value ~default:"" in
      let lsn =
        Wal.append ~stream t.wal
          (Log_record.Update { txid = Txn.txid txn; key; before; after })
      in
      let lsn =
        if t.profile.Engine_profile.update_meta_bytes > 0 then
          Wal.append ~stream t.wal
            (Log_record.Noop { filler = t.profile.Engine_profile.update_meta_bytes })
        else lsn
      in
      if deps != no_deps then
        deps.(stream) <- max deps.(stream) (Lsn.to_int lsn);
      Buffer_pool.mark_dirty t.pool page ~lsn;
      match value with
      | Some v -> Page.set page ~key ~value:v ~lsn
      | None ->
          Hashtbl.remove page.Page.values key;
          page.Page.page_lsn <- Lsn.max page.Page.page_lsn lsn)

let cpu t span = Hypervisor.Vmm.exec t.vmm span

let run_ops t txn ~deps ops =
  let writes = write_set ops in
  List.iter (fun (key, _) -> Lock_table.lock t.locks ~txid:(Txn.txid txn) ~key;
              Txn.record_lock txn key)
    writes;
  let reads =
    List.map
      (fun key ->
        cpu t t.profile.Engine_profile.op_cpu;
        (key, Buffer_pool.with_page t.pool ~key (fun page -> Page.get page ~key)))
      (read_set ops)
  in
  List.iter
    (fun (key, value) ->
      cpu t t.profile.Engine_profile.op_cpu;
      apply_update t txn ~deps ~key ~value)
    writes;
  (writes, reads)

let release txn t = Lock_table.unlock_all t.locks ~txid:(Txn.txid txn) ~keys:(Txn.locked_keys txn)

(* Append the transaction's outcome record. Single-stream: the classic
   [Commit]. Multi-stream: fold the WAL's cross-stream watermark into
   the transaction's own per-stream append ends, add the commit record
   itself (its size is independent of the dependency values, so its end
   LSN is known before appending), publish the vector back — all
   without a blocking point, so the read-modify-write of the watermark
   is atomic in the cooperative simulation. The fold is what totally
   orders multi-stream commits: any crash that preserves this commit's
   dependencies also preserves every earlier commit's. *)
let append_commit_record t ~deps ~home txid =
  if t.streams = 1 then Wal.append t.wal (Log_record.Commit { txid })
  else begin
    let g = Wal.dep_watermark t.wal in
    for s = 0 to t.streams - 1 do
      if g.(s) > deps.(s) then deps.(s) <- g.(s)
    done;
    let record = Log_record.Commit_multi { txid; deps } in
    let end_b =
      Lsn.to_int (Wal.end_lsn ~stream:home t.wal) + Log_record.encoded_size record
    in
    if end_b > deps.(home) then deps.(home) <- end_b;
    let lsn = Wal.append ~stream:home t.wal record in
    assert (Lsn.to_int lsn = deps.(home));
    for s = 0 to t.streams - 1 do
      if deps.(s) > g.(s) then g.(s) <- deps.(s)
    done;
    lsn
  end

(* Make the commit durable: every stream the dependency vector names,
   the home stream through the policy's batched force. *)
let force_commit t ~deps ~home lsn =
  if Time.compare_span t.profile.Engine_profile.commit_delay Time.zero_span > 0
  then Process.sleep t.profile.Engine_profile.commit_delay;
  if t.streams = 1 then Wal.force_batched t.wal lsn
  else begin
    for s = 0 to t.streams - 1 do
      if s <> home && deps.(s) > 0 then Wal.force ~stream:s t.wal (Lsn.of_int deps.(s))
    done;
    Wal.force_batched ~stream:home t.wal (Lsn.of_int deps.(home))
  end

let serialised_commit t ~deps ~home =
  Resource.Mutex.with_lock t.commit_serialiser (fun () ->
      if t.streams = 1 then Wal.force_exclusive t.wal
      else begin
        for s = 0 to t.streams - 1 do
          if s <> home && deps.(s) > 0 then
            Wal.force ~stream:s t.wal (Lsn.of_int deps.(s))
        done;
        Wal.force_exclusive ~stream:home t.wal
      end)

let exec t ops =
  let sim = Hypervisor.Vmm.sim t.vmm in
  let started = Sim.now sim in
  let started_ns = Time.to_ns started in
  cpu t t.profile.Engine_profile.txn_base_cpu;
  let txn = Txn.Manager.begin_txn t.txns in
  let deps = if t.streams = 1 then no_deps else Array.make t.streams 0 in
  let home = home_stream t (Txn.txid txn) in
  ignore (Wal.append ~stream:home t.wal (Log_record.Begin { txid = Txn.txid txn }));
  let writes, reads = run_ops t txn ~deps ops in
  if writes = [] then begin
    (* Read-only transactions commit without touching the log device. *)
    Txn.Manager.finish t.txns txn Txn.Committed;
    release txn t
  end
  else begin
    let commit_lsn = append_commit_record t ~deps ~home (Txn.txid txn) in
    let force_started =
      match t.metrics with
      | Some m ->
          Metrics.Span.finish m.m_exec sim started_ns;
          Metrics.Span.start sim
      | None -> 0
    in
    if t.async_commit then ()  (* ack without forcing: the unsafe classic *)
    else begin
      match t.profile.Engine_profile.commit_policy with
      | Commit_policy.Serial ->
          (* No group commit: every transaction pays its own physical
             log write, serialised. *)
          serialised_commit t ~deps ~home
      | Commit_policy.Fixed _ | Commit_policy.Adaptive _ ->
          force_commit t ~deps ~home commit_lsn
    end;
    (match t.metrics with
    | Some m ->
        Metrics.Span.finish m.m_force sim force_started;
        Metrics.Counter.incr m.m_commits
    | None -> ());
    Txn.Manager.finish t.txns txn Txn.Committed;
    release txn t
  end;
  let latency = Time.diff (Sim.now sim) started in
  (match t.metrics with
  | Some m when writes <> [] -> Metrics.Histogram.observe_span m.m_total latency
  | Some _ | None -> ());
  t.committed_txids <- Txn.txid txn :: t.committed_txids;
  Stats.Sample.add_span t.latencies latency;
  { txid = Txn.txid txn; writes; reads; latency }

let undo_in_memory t txn ~deps =
  (* Each rollback step is logged as a compensating update so that redo
     repeats the rollback after a crash. *)
  List.iter
    (fun (key, before) ->
      Buffer_pool.with_page t.pool ~key (fun page ->
          let current = Option.value (Page.get page ~key) ~default:"" in
          let stream = stream_of_key t key in
          let lsn =
            Wal.append ~stream t.wal
              (Log_record.Update
                 { txid = Txn.txid txn; key; before = current; after = before })
          in
          if deps != no_deps then
            deps.(stream) <- max deps.(stream) (Lsn.to_int lsn);
          Buffer_pool.mark_dirty t.pool page ~lsn;
          if String.length before = 0 then Hashtbl.remove page.Page.values key
          else Page.set page ~key ~value:before ~lsn;
          page.Page.page_lsn <- Lsn.max page.Page.page_lsn lsn))
    (Txn.undo_log txn)

let exec_abort t ops =
  cpu t t.profile.Engine_profile.txn_base_cpu;
  let txn = Txn.Manager.begin_txn t.txns in
  let deps = if t.streams = 1 then no_deps else Array.make t.streams 0 in
  let home = home_stream t (Txn.txid txn) in
  ignore (Wal.append ~stream:home t.wal (Log_record.Begin { txid = Txn.txid txn }));
  ignore (run_ops t txn ~deps ops);
  undo_in_memory t txn ~deps;
  (if t.streams = 1 then
     ignore (Wal.append t.wal (Log_record.Abort { txid = Txn.txid txn }))
   else begin
     (* The abort's dependency vector covers its own compensating
        updates (no watermark fold — aborts do not order against other
        transactions): durable-and-valid means the rollback fully
        reached the log, so recovery must not undo again; anything less
        leaves the transaction an ordinary loser. *)
     let record = Log_record.Abort_multi { txid = Txn.txid txn; deps } in
     let end_b =
       Lsn.to_int (Wal.end_lsn ~stream:home t.wal) + Log_record.encoded_size record
     in
     if end_b > deps.(home) then deps.(home) <- end_b;
     ignore (Wal.append ~stream:home t.wal record)
   end);
  (* An abort need not be forced: if it is lost, recovery undoes the
     transaction as a loser with the same outcome. *)
  Txn.Manager.finish t.txns txn Txn.Aborted;
  release txn t;
  Txn.txid txn

let committed_txids t = List.rev t.committed_txids
let committed_count t = Txn.Manager.committed t.txns
let aborted_count t = Txn.Manager.aborted t.txns
let latencies t = t.latencies

let log_bytes_per_txn t =
  let committed = committed_count t in
  if committed = 0 then 0.
  else begin
    let total = ref 0 in
    for s = 0 to t.streams - 1 do
      total := !total + Lsn.to_int (Wal.end_lsn ~stream:s t.wal)
    done;
    float_of_int !total /. float_of_int committed
  end
