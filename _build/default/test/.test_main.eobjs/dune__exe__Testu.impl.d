test/testu.ml: Alcotest Desim Float Process QCheck2 QCheck_alcotest Sim Time
