(* RapiLog-R / RapiLog-Q: machine-readable evidence for the replicated
   trusted logger (PR 5) and, behind --quorum, the quorum-replicated
   logger (PR 7).

   The PR 5 sections make two claims, with teeth:

   - tab7-machine-loss: sweep the machine-loss crash kind — the whole
     primary vanishing with no residual-energy window — over every
     strided event boundary of the crash window. Local RapiLog is
     expected to lose buffered acknowledged commits (that loss bounds
     its durability domain and is the teeth that prove the sweep can see
     machine loss at all); replica-ack RapiLog must show zero contract
     breaks and zero lost commits at every explored boundary.
   - fig12-replication: steady-state throughput and commit latency of
     the three ack policies (local, replica-ack, async-replica) as the
     network RTT grows, on both the 7200 rpm disk and the SSD.

   Replicated runs must stay deterministic: the machine-loss sweep is
   bit-identical across {!Harness.Parallel} jobs, and a steady run with
   {!Desim.Metrics} recording on is bit-identical to one with it off.

   With --quorum the harness instead produces the PR 7 evidence for
   RapiLog-Q (n replicas, commit on k acks, explicit leader election):

   - pair-sweep: every strided ordered pair of machine-loss boundaries
     under all four crash-pair/partition schedules, at majority quorum
     (3 replicas, k = 2) — zero contract breaks, zero quorum-acked
     commits lost, every recovery election quorate, and the sweep
     bit-identical across Parallel jobs;
   - quorum-1 control: the same pair schedules at k = 1 over asymmetric
     links (one fast replica, two slow) must lose acknowledged commits
     and stall non-quorate elections — the teeth that prove the pair
     sweep can see under-replication at all;
   - quorum-grid: steady-state commit latency over quorum size k x RTT
     with staggered per-replica links — a k = 3 commit waits for the
     slowest replica, a k = 1 commit for the fastest;
   - determinism: metrics recording must not perturb a quorum run, and
     the quorum spans must be on the registry.

   Writes a JSON report (default BENCH_PR5.json; BENCH_PR7.json with
   --quorum). With --check it self-validates so `dune runtest` keeps
   the harness honest.

   Usage: replication.exe [--quick] [--check] [--quorum] [--jobs N] [--output PATH] *)

open Desim
open Harness
open Harness.Json

let base_scenario ~quick =
  {
    Scenario.default with
    Scenario.workload =
      Scenario.Micro
        {
          Workload.Microbench.default_config with
          Workload.Microbench.keys = 256;
          value_bytes = 64;
        };
    clients = 4;
    seed = 20_2613L;
    warmup = Time.ms 1;
    duration = (if quick then Time.ms 10 else Time.ms 50);
  }

(* One-way links shaped from a round-trip time: half the RTT each way,
   default 10 GbE serialisation, no drops (replica-ack has no
   retransmit; a lossy link is an [Async_replica]-only configuration). *)
let net_of_rtt_us rtt_us policy =
  let one_way = { Net.Link.default with Net.Link.latency = Net.Link.Constant (Time.ns (rtt_us * 1000 / 2)) } in
  { Net.Replication.policy; data_link = one_way; ack_link = one_way }

let replicated_scenario ~quick ~policy ~rtt_us =
  {
    (base_scenario ~quick) with
    Scenario.mode = Scenario.Rapilog_replicated;
    net = net_of_rtt_us rtt_us policy;
  }

let surface_config ~quick scenario =
  {
    (Crash_surface.default scenario) with
    Crash_surface.kinds = [ Crash_surface.Machine_loss ];
    window_start = Time.ms 2;
    window_length = (if quick then Time.ms 4 else Time.ms 20);
  }

let autostride config ~target =
  let total =
    List.fold_left
      (fun acc kind ->
        acc + (Crash_surface.enumerate config kind).Crash_surface.e_boundaries)
      0 config.Crash_surface.kinds
  in
  (total, max 1 (total / target))

let sweep_json (r : Crash_surface.result) =
  Obj
    [
      ("mode", Str (Scenario.mode_name r.Crash_surface.r_mode));
      ("stride", Num (float_of_int r.Crash_surface.r_stride));
      ("total_boundaries", Num (float_of_int r.Crash_surface.r_total_boundaries));
      ("explored", Num (float_of_int r.Crash_surface.r_explored));
      ("contract_breaks", Num (float_of_int r.Crash_surface.r_contract_breaks));
      ("lost_total", Num (float_of_int r.Crash_surface.r_lost_total));
      ( "lossy_points",
        Num
          (float_of_int
             (List.length
                (List.filter
                   (fun v -> v.Crash_surface.v_lost > 0)
                   r.Crash_surface.r_verdicts))) );
    ]

(* -- PR 7: RapiLog-Q, the quorum-replicated logger ---------------------- *)

let quorum_scenario ~quick ~replicas ~quorum ~links =
  {
    (base_scenario ~quick) with
    Scenario.mode = Scenario.Rapilog_quorum;
    quorum = { Net.Quorum.replicas; quorum; links };
  }

let one_way_us us =
  {
    Net.Link.default with
    Net.Link.latency = Net.Link.Constant (Time.ns (us * 1000));
  }

let pair_sweep_json (r : Crash_surface.pair_result) =
  let non_quorate =
    List.length
      (List.filter
         (fun v -> not v.Crash_surface.pv_election_quorate)
         r.Crash_surface.pr_verdicts)
  in
  let lossy =
    List.length
      (List.filter (fun v -> v.Crash_surface.pv_lost > 0) r.Crash_surface.pr_verdicts)
  in
  Obj
    [
      ("mode", Str (Scenario.mode_name r.Crash_surface.pr_mode));
      ("candidates", Num (float_of_int r.Crash_surface.pr_candidates));
      ("pairs", Num (float_of_int r.Crash_surface.pr_pairs));
      ("points", Num (float_of_int r.Crash_surface.pr_points));
      ("contract_breaks", Num (float_of_int r.Crash_surface.pr_breaks));
      ("lost_total", Num (float_of_int r.Crash_surface.pr_lost_total));
      ("lossy_points", Num (float_of_int lossy));
      ("non_quorate_elections", Num (float_of_int non_quorate));
      ( "schedules",
        Arr
          (List.map
             (fun (s : Crash_surface.pair_summary) ->
               Obj
                 [
                   ( "schedule",
                     Str (Crash_surface.pair_schedule_name s.Crash_surface.ps_schedule) );
                   ("points", Num (float_of_int s.Crash_surface.ps_points));
                   ("contract_breaks", Num (float_of_int s.Crash_surface.ps_breaks));
                   ("lost", Num (float_of_int s.Crash_surface.ps_lost));
                 ])
             r.Crash_surface.pr_schedules) );
    ]

let quorum_main ~quick ~check ~jobs ~output =
  let failures = ref [] in
  let fail msg = failures := msg :: !failures in

  (* -- pair sweep at majority quorum: the tentpole claim -------------- *)
  let majority_scenario =
    quorum_scenario ~quick ~replicas:3 ~quorum:2 ~links:[ Net.Link.default ]
  in
  let pair_config = surface_config ~quick majority_scenario in
  let target = if quick then 8 else 40 in
  let t0 = Unix.gettimeofday () in
  let pairs =
    Crash_surface.sweep_pairs ~jobs:1 pair_config
      ~schedules:Crash_surface.all_pair_schedules ~target
  in
  let pairs_s = Unix.gettimeofday () -. t0 in
  let pairs_parallel =
    Crash_surface.sweep_pairs ~jobs:4 pair_config
      ~schedules:Crash_surface.all_pair_schedules ~target
  in
  let pairs_identical = pairs = pairs_parallel in
  Printf.printf
    "replication: quorum(3,2) pair sweep: %d points over %d schedules, %d \
     contract breaks, %d lost (%.2fs); parallel bit-identical: %b\n%!"
    pairs.Crash_surface.pr_points
    (List.length pairs.Crash_surface.pr_schedules)
    pairs.Crash_surface.pr_breaks pairs.Crash_surface.pr_lost_total pairs_s
    pairs_identical;

  (* -- quorum-1 control: the teeth ------------------------------------ *)
  (* One fast replica acks before the two slow ones even receive, so a
     k = 1 commit's only replicated copy sits on the fast node — losing
     the primary plus that node must lose commits, and with only two of
     three replicas left the k = 1 adoption quorum (n - k + 1 = 3) is
     unreachable, so recovery elections stall non-quorate. *)
  let control_scenario =
    quorum_scenario ~quick ~replicas:3 ~quorum:1
      ~links:[ one_way_us 25; one_way_us 2000; one_way_us 2000 ]
  in
  let control_config = surface_config ~quick control_scenario in
  let t1 = Unix.gettimeofday () in
  let control =
    Crash_surface.sweep_pairs ~jobs control_config
      ~schedules:[ Crash_surface.Primary_then_node; Crash_surface.Node_then_primary ]
      ~target:(if quick then 9 else 30)
  in
  let control_s = Unix.gettimeofday () -. t1 in
  let control_non_quorate =
    List.exists
      (fun v -> not v.Crash_surface.pv_election_quorate)
      control.Crash_surface.pr_verdicts
  in
  Printf.printf
    "replication: quorum(3,1) control: %d points, %d lost, non-quorate \
     elections: %b (%.2fs)\n%!"
    control.Crash_surface.pr_points control.Crash_surface.pr_lost_total
    control_non_quorate control_s;

  (* -- quorum size x RTT grid ----------------------------------------- *)
  let rtts_us = if quick then [ 50; 1000 ] else [ 0; 50; 200; 1000; 4000 ] in
  let ks = [ 1; 2; 3 ] in
  let grid_cell ~k ~rtt_us =
    {
      (quorum_scenario ~quick ~replicas:3 ~quorum:k
         ~links:
           [
             one_way_us (rtt_us / 2);
             one_way_us rtt_us;
             one_way_us (3 * rtt_us / 2);
           ])
      with
      Scenario.device = Scenario.Flash Storage.Ssd.default;
    }
  in
  let grid_keys =
    List.concat_map (fun rtt_us -> List.map (fun k -> (k, rtt_us)) ks) rtts_us
  in
  let t2 = Unix.gettimeofday () in
  let grid_results =
    Experiment.run_steady_batch ~jobs
      (List.map (fun (k, rtt_us) -> grid_cell ~k ~rtt_us) grid_keys)
  in
  let grid_s = Unix.gettimeofday () -. t2 in
  let grid = List.combine grid_keys grid_results in
  let grid_json ((k, rtt_us), (r : Experiment.steady_result)) =
    Obj
      [
        ("quorum", Num (float_of_int k));
        ("rtt_us", Num (float_of_int rtt_us));
        ("throughput_txn_s", Num r.Experiment.throughput);
        ("p50_us", Num r.Experiment.latency_p50_us);
        ("p99_us", Num r.Experiment.latency_p99_us);
        ("committed", Num (float_of_int r.Experiment.committed_in_window));
      ]
  in
  Printf.printf "replication: quorum grid: %d cells (%.2fs)\n%!"
    (List.length grid) grid_s;

  (* -- determinism ----------------------------------------------------- *)
  let plain = Experiment.run_steady majority_scenario in
  let with_metrics, registry = Experiment.run_steady_metrics majority_scenario in
  let metrics_identical = plain = with_metrics in
  let metric_names = Metrics.names registry in
  let required_metrics =
    [ "logger.replicate"; "logger.quorum_wait"; "net.link_delay"; "replica.drain" ]
  in
  let missing_metrics =
    List.filter (fun n -> not (List.mem n metric_names)) required_metrics
  in
  Printf.printf
    "replication: quorum determinism: metrics-on bit-identical: %b; spans \
     recorded: %s\n%!"
    metrics_identical
    (String.concat ", "
       (List.filter (fun n -> List.mem n metric_names) required_metrics));

  let report =
    Obj
      [
        ("pr", Num 7.);
        ("harness", Str "replication.exe --quorum");
        ("quick", Bool quick);
        ("jobs", Num (float_of_int jobs));
        ( "pair_sweep",
          Obj
            [
              ("replicas", Num 3.);
              ("quorum", Num 2.);
              ("result", pair_sweep_json pairs);
              ("seconds", Num pairs_s);
              ("parallel_bit_identical", Bool pairs_identical);
            ] );
        ( "quorum_one_control",
          Obj
            [
              ("replicas", Num 3.);
              ("quorum", Num 1.);
              ("result", pair_sweep_json control);
              ("seconds", Num control_s);
            ] );
        ( "quorum_grid",
          Obj
            [
              ("rtts_us", Arr (List.map (fun r -> Num (float_of_int r)) rtts_us));
              ("quorums", Arr (List.map (fun k -> Num (float_of_int k)) ks));
              ("seconds", Num grid_s);
              ("cells", Arr (List.map grid_json grid));
            ] );
        ( "determinism",
          Obj
            [
              ("metrics_bit_identical", Bool metrics_identical);
              ("pair_sweep_parallel_bit_identical", Bool pairs_identical);
              ("metrics_missing", Arr (List.map (fun n -> Str n) missing_metrics));
            ] );
        (* PR 8 reference point: the multi-node pair sweeps replay every
           pair over the page-granular COW media store — writes blit
           into owned 4 KiB pages instead of allocating per-sector
           strings — so these wall-clocks are the ones EXPERIMENTS.md
           quotes for the engine-scale comparison. *)
        ( "bench_pr8",
          Obj
            [
              ("media", Str "cow-pages");
              ("pair_sweep_seconds", Num pairs_s);
              ("pair_points", Num (float_of_int pairs.Crash_surface.pr_points));
              ("control_seconds", Num control_s);
              ( "control_points",
                Num (float_of_int control.Crash_surface.pr_points) );
            ] );
      ]
  in
  let text = Json.to_string report in
  let oc = open_out output in
  output_string oc text;
  close_out oc;
  Printf.printf "replication: wrote %s\n%!" output;

  if check then begin
    (match Json.of_string text with
    | exception Json.Parse_error msg ->
        fail (Printf.sprintf "report is not valid JSON: %s" msg)
    | Obj _ -> ()
    | _ -> fail "report is not a JSON object");
    if pairs.Crash_surface.pr_breaks <> 0 then
      fail
        (Printf.sprintf
           "quorum(3,2) pair sweep found %d contract breaks (want 0)"
           pairs.Crash_surface.pr_breaks);
    if pairs.Crash_surface.pr_lost_total <> 0 then
      fail "quorum(3,2) pair sweep lost quorum-acked commits (want 0)";
    if pairs.Crash_surface.pr_points < (if quick then 12 else 80) then
      fail
        (Printf.sprintf "pair sweep explored only %d points"
           pairs.Crash_surface.pr_points);
    List.iter
      (fun (s : Crash_surface.pair_summary) ->
        if s.Crash_surface.ps_points < 1 then
          fail
            (Printf.sprintf "schedule %s ran no points"
               (Crash_surface.pair_schedule_name s.Crash_surface.ps_schedule)))
      pairs.Crash_surface.pr_schedules;
    if List.length pairs.Crash_surface.pr_schedules <> 4 then
      fail "pair sweep did not cover all four schedules";
    if
      List.exists
        (fun v ->
          (not v.Crash_surface.pv_election_quorate)
          || v.Crash_surface.pv_elected < 0)
        pairs.Crash_surface.pr_verdicts
    then fail "a majority-quorum recovery election failed to reach its quorum";
    if not pairs_identical then
      fail "pair sweep differs between jobs=1 and jobs=4";
    if control.Crash_surface.pr_lost_total < 1 then
      fail
        "quorum-1 control lost nothing to the crash pairs (teeth are \
         missing: the sweep cannot see under-replication)";
    if not control_non_quorate then
      fail "quorum-1 control elections were all quorate (want stalls)";
    List.iter
      (fun ((k, rtt_us), (r : Experiment.steady_result)) ->
        if r.Experiment.committed_in_window <= 0 then
          fail
            (Printf.sprintf "quorum grid cell committed nothing (k=%d, rtt=%dus)"
               k rtt_us))
      grid;
    (* Physics: a k = 3 commit waits for the slowest replica's round
       trip, a k = 1 commit for the fastest. *)
    let p50_of k rtt_us =
      match
        List.find_opt (fun ((k', rtt'), _) -> k' = k && rtt' = rtt_us) grid
      with
      | Some (_, r) -> r.Experiment.latency_p50_us
      | None -> nan
    in
    let top_rtt = List.fold_left max 0 rtts_us in
    let k1_p50 = p50_of 1 top_rtt and k3_p50 = p50_of 3 top_rtt in
    if not (k3_p50 > k1_p50) then
      fail
        (Printf.sprintf
           "quorum-3 p50 (%.0f us) should exceed quorum-1 p50 (%.0f us) at \
            %d us RTT"
           k3_p50 k1_p50 top_rtt);
    if not metrics_identical then
      fail "metrics recording perturbed the quorum steady run";
    if missing_metrics <> [] then
      fail
        (Printf.sprintf "quorum spans missing from the registry: %s"
           (String.concat ", " missing_metrics));
    match !failures with
    | [] -> print_endline "replication: quorum check OK"
    | msgs ->
        List.iter
          (fun m -> Printf.eprintf "replication: CHECK FAILED: %s\n" m)
          msgs;
        exit 1
  end
  else
    match !failures with
    | [] -> ()
    | msgs ->
        List.iter (fun m -> Printf.eprintf "replication: WARNING: %s\n" m) msgs

let usage () =
  print_endline
    "usage: replication.exe [--quick] [--check] [--quorum] [--jobs N] [--output PATH]";
  exit 2

let () =
  let quick = ref false in
  let check = ref false in
  let quorum = ref false in
  let jobs = ref (Parallel.default_jobs ()) in
  let output = ref "" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest -> quick := true; parse rest
    | "--check" :: rest -> check := true; parse rest
    | "--quorum" :: rest -> quorum := true; parse rest
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n when n >= 1 -> jobs := n
        | _ -> usage ());
        parse rest
    | "--output" :: path :: rest -> output := path; parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !output = "" then
    output := if !quorum then "BENCH_PR7.json" else "BENCH_PR5.json";
  if !quorum then begin
    quorum_main ~quick:!quick ~check:!check ~jobs:!jobs ~output:!output;
    exit 0
  end;
  let quick = !quick and jobs = !jobs in
  let failures = ref [] in
  let fail msg = failures := msg :: !failures in

  (* -- tab7: machine loss, local vs replicated ------------------------- *)
  (* Local RapiLog: the journal sweep covers the surface cheaply (every
     boundary when not quick — the statement is about the whole
     surface, not a sample). *)
  let local_scenario =
    { (base_scenario ~quick) with Scenario.mode = Scenario.Rapilog }
  in
  let local_config = surface_config ~quick local_scenario in
  let local_boundaries, local_stride =
    if quick then autostride local_config ~target:60 else (0, 1)
  in
  let local_config = { local_config with Crash_surface.stride = local_stride } in
  let t0 = Unix.gettimeofday () in
  let local = Crash_surface.sweep_journal ~jobs local_config in
  let local_s = Unix.gettimeofday () -. t0 in
  ignore local_boundaries;
  Printf.printf
    "replication: machine-loss local rapilog: %d/%d boundaries, %d contract \
     breaks, %d acked commits lost (%.2fs)\n%!"
    local.Crash_surface.r_explored local.Crash_surface.r_total_boundaries
    local.Crash_surface.r_contract_breaks local.Crash_surface.r_lost_total
    local_s;

  (* Replicated, replica-ack: every explored boundary must uphold the
     contract. Full replay per point — the sweep actually runs the
     network, the replica and the merged recovery. *)
  let repl_scenario =
    replicated_scenario ~quick ~policy:Net.Replication.Replica_ack ~rtt_us:50
  in
  let repl_config = surface_config ~quick repl_scenario in
  let repl_boundaries, repl_stride =
    autostride repl_config ~target:(if quick then 24 else 400)
  in
  let repl_config = { repl_config with Crash_surface.stride = repl_stride } in
  Printf.printf
    "replication: replicated surface has %d boundaries, stride %d...\n%!"
    repl_boundaries repl_stride;
  let t1 = Unix.gettimeofday () in
  let replicated = Crash_surface.sweep ~jobs:1 repl_config in
  let replicated_s = Unix.gettimeofday () -. t1 in
  let replicated_parallel = Crash_surface.sweep ~jobs:4 repl_config in
  let sweep_identical = replicated = replicated_parallel in
  Printf.printf
    "replication: machine-loss replica-ack: %d points, %d contract breaks, %d \
     lost (%.2fs); parallel bit-identical: %b\n%!"
    replicated.Crash_surface.r_explored
    replicated.Crash_surface.r_contract_breaks
    replicated.Crash_surface.r_lost_total replicated_s sweep_identical;

  (* -- fig12: throughput/latency vs RTT, three policies, two devices --- *)
  let rtts_us = if quick then [ 50; 1000 ] else [ 0; 50; 200; 1000; 4000 ] in
  let devices =
    [
      ("hdd", Scenario.Disk Storage.Hdd.default_7200rpm);
      ("ssd", Scenario.Flash Storage.Ssd.default);
    ]
  in
  let policies = Net.Replication.all_policies in
  let cells =
    List.concat_map
      (fun (_, device) ->
        List.concat_map
          (fun rtt_us ->
            List.map
              (fun policy ->
                { (replicated_scenario ~quick ~policy ~rtt_us) with Scenario.device })
              policies)
          rtts_us)
      devices
  in
  let t2 = Unix.gettimeofday () in
  let results = Experiment.run_steady_batch ~jobs cells in
  let fig12_s = Unix.gettimeofday () -. t2 in
  let tagged =
    List.map2
      (fun config r -> (config, r))
      cells results
  in
  let cell_json ((config : Scenario.config), (r : Experiment.steady_result)) =
    Obj
      [
        ("device", Str (Scenario.device_name config.Scenario.device));
        ( "rtt_us",
          Num
            (float_of_int
               (match config.Scenario.net.Net.Replication.data_link.Net.Link.latency with
               | Net.Link.Constant one_way -> 2 * Time.span_to_ns one_way / 1000
               | _ -> -1)) );
        ( "policy",
          Str (Net.Replication.policy_name config.Scenario.net.Net.Replication.policy) );
        ("throughput_txn_s", Num r.Experiment.throughput);
        ("p50_us", Num r.Experiment.latency_p50_us);
        ("p99_us", Num r.Experiment.latency_p99_us);
        ("committed", Num (float_of_int r.Experiment.committed_in_window));
      ]
  in
  Printf.printf "replication: fig12 grid: %d cells (%.2fs)\n%!"
    (List.length cells) fig12_s;

  (* -- determinism: metrics recording must not perturb a replicated run *)
  let det_config =
    replicated_scenario ~quick ~policy:Net.Replication.Replica_ack ~rtt_us:50
  in
  let plain = Experiment.run_steady det_config in
  let with_metrics, registry = Experiment.run_steady_metrics det_config in
  let metrics_identical = plain = with_metrics in
  let metric_names = Metrics.names registry in
  let required_metrics =
    [ "logger.replicate"; "logger.replica_ack_wait"; "net.link_delay"; "replica.drain" ]
  in
  let missing_metrics =
    List.filter (fun n -> not (List.mem n metric_names)) required_metrics
  in
  Printf.printf
    "replication: determinism: metrics-on bit-identical: %b; spans recorded: %s\n%!"
    metrics_identical
    (String.concat ", " (List.filter (fun n -> List.mem n metric_names) required_metrics));

  let report =
    Obj
      [
        ("pr", Num 5.);
        ("harness", Str "replication.exe");
        ("quick", Bool quick);
        ("jobs", Num (float_of_int jobs));
        ( "tab7_machine_loss",
          Obj
            [
              ("local", sweep_json local);
              ("local_seconds", Num local_s);
              ("replicated", sweep_json replicated);
              ("replicated_seconds", Num replicated_s);
              ("replicated_parallel_bit_identical", Bool sweep_identical);
            ] );
        ( "fig12_replication",
          Obj
            [
              ("rtts_us", Arr (List.map (fun r -> Num (float_of_int r)) rtts_us));
              ("policies", Arr (List.map (fun p -> Str (Net.Replication.policy_name p)) policies));
              ("devices", Arr (List.map (fun (n, _) -> Str n) devices));
              ("seconds", Num fig12_s);
              ("cells", Arr (List.map cell_json tagged));
            ] );
        ( "determinism",
          Obj
            [
              ("metrics_bit_identical", Bool metrics_identical);
              ("sweep_parallel_bit_identical", Bool sweep_identical);
              ( "metrics_missing",
                Arr (List.map (fun n -> Str n) missing_metrics) );
            ] );
      ]
  in
  let text = Json.to_string report in
  let oc = open_out !output in
  output_string oc text;
  close_out oc;
  Printf.printf "replication: wrote %s\n%!" !output;

  if !check then begin
    (match Json.of_string text with
    | exception Json.Parse_error msg ->
        fail (Printf.sprintf "report is not valid JSON: %s" msg)
    | Obj _ -> ()
    | _ -> fail "report is not a JSON object");
    if replicated.Crash_surface.r_contract_breaks <> 0 then
      fail
        (Printf.sprintf
           "replica-ack machine-loss sweep found %d contract breaks (want 0)"
           replicated.Crash_surface.r_contract_breaks);
    if replicated.Crash_surface.r_lost_total <> 0 then
      fail "replica-ack machine-loss sweep lost acked commits (want 0)";
    if replicated.Crash_surface.r_explored < (if quick then 8 else 100) then
      fail
        (Printf.sprintf "replicated sweep explored only %d points"
           replicated.Crash_surface.r_explored);
    if local.Crash_surface.r_lost_total < 1 then
      fail
        "local rapilog lost nothing to machine loss (teeth are missing: the \
         sweep cannot see the failure it claims to cover)";
    if local.Crash_surface.r_explored < (if quick then 20 else 500) then
      fail
        (Printf.sprintf "local sweep explored only %d points"
           local.Crash_surface.r_explored);
    if not sweep_identical then
      fail "replicated sweep differs between jobs=1 and jobs=4";
    if not metrics_identical then
      fail "metrics recording perturbed the replicated steady run";
    if missing_metrics <> [] then
      fail
        (Printf.sprintf "replication spans missing from the registry: %s"
           (String.concat ", " missing_metrics));
    List.iter
      (fun (config, (r : Experiment.steady_result)) ->
        if r.Experiment.committed_in_window <= 0 then
          fail
            (Printf.sprintf "fig12 cell committed nothing (%s, %s)"
               (Scenario.device_name config.Scenario.device)
               (Net.Replication.policy_name
                  config.Scenario.net.Net.Replication.policy)))
      tagged;
    (* Physics: at the largest RTT, a replica-ack commit pays the round
       trip; the local policy does not. *)
    let p50_of device_name policy rtt_us =
      let rec find = function
        | [] -> nan
        | ((config : Scenario.config), (r : Experiment.steady_result)) :: rest ->
            let rtt =
              match config.Scenario.net.Net.Replication.data_link.Net.Link.latency with
              | Net.Link.Constant one_way -> 2 * Time.span_to_ns one_way / 1000
              | _ -> -1
            in
            if
              Scenario.device_name config.Scenario.device = device_name
              && config.Scenario.net.Net.Replication.policy = policy
              && rtt = rtt_us
            then r.Experiment.latency_p50_us
            else find rest
      in
      find tagged
    in
    let top_rtt = List.fold_left max 0 rtts_us in
    let ssd_name = Scenario.device_name (Scenario.Flash Storage.Ssd.default) in
    let local_p50 = p50_of ssd_name Net.Replication.Local top_rtt in
    let ack_p50 = p50_of ssd_name Net.Replication.Replica_ack top_rtt in
    if not (ack_p50 > local_p50) then
      fail
        (Printf.sprintf
           "replica-ack p50 (%.0f us) should exceed local p50 (%.0f us) at \
            %d us RTT"
           ack_p50 local_p50 top_rtt);
    match !failures with
    | [] -> print_endline "replication: check OK"
    | msgs ->
        List.iter
          (fun m -> Printf.eprintf "replication: CHECK FAILED: %s\n" m)
          msgs;
        exit 1
  end
  else
    match !failures with
    | [] -> ()
    | msgs ->
        List.iter (fun m -> Printf.eprintf "replication: WARNING: %s\n" m) msgs
