(** Blocking synchronisation primitives for processes. *)

module Semaphore : sig
  (** Counting semaphore with FIFO wake-up order. *)

  type t

  val create : Sim.t -> int -> t
  (** [create sim n] has [n] initial permits; requires [n >= 0]. *)

  val acquire : t -> unit
  (** Take a permit, blocking the calling process if none is available. *)

  val try_acquire : t -> bool
  (** Non-blocking variant; callable from any context. *)

  val release : t -> unit
  (** Return a permit, waking the longest-waiting process if any. Callable
      from any context. *)

  val available : t -> int
  (** Permits currently free. *)

  val waiting : t -> int
  (** Processes currently blocked in {!acquire}. *)
end

module Mutex : sig
  (** Binary semaphore with FIFO hand-off. *)

  type t

  val create : Sim.t -> t

  val lock : t -> unit
  (** Take the lock, blocking the calling process while it is held. *)

  val unlock : t -> unit
  (** Release the lock, handing it to the longest-waiting process if
      any. *)

  val with_lock : t -> (unit -> 'a) -> 'a
  (** Runs the function holding the lock; releases it on any exit,
      including {!Process.Cancelled}. *)
end

module Latch : sig
  (** Countdown latch: waiters block until the count reaches zero. Used
      to join fan-out work (e.g. a striped volume waiting for all of a
      request's segments). *)

  type t

  val create : Sim.t -> int -> t
  (** Requires a positive initial count. *)

  val count_down : t -> unit
  (** Callable from any context; counting below zero is an error. *)

  val wait : t -> unit
  (** Block the calling process until the count is zero; returns
      immediately if it already is. *)

  val pending : t -> int
  (** The remaining count. *)
end

module Condition : sig
  (** Broadcast-style condition: waiters block until someone signals. *)

  type t

  val create : Sim.t -> t

  val wait : t -> unit
  (** Block the calling process until the next {!signal} or
      {!broadcast}. There is no separate predicate: callers re-check
      their condition in a loop, as with any condition variable. *)

  val broadcast : t -> unit
  (** Wake every current waiter. Callable from any context. *)

  val signal : t -> unit
  (** Wake exactly one waiter (FIFO), if any. *)

  val waiting : t -> int
  (** Processes currently blocked in {!wait}. *)
end
