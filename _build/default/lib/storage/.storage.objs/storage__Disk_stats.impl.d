lib/storage/disk_stats.ml: Desim Format Stats Time
