(** Shared machinery for driving a built scenario.

    Every experiment — steady-state, sampled failure injection, and the
    exhaustive crash-surface sweep — runs the same way: load the initial
    rows through ordinary transactions, launch the closed-loop clients,
    and track on the client side every acknowledged write transaction
    and the store state those acknowledgements imply. This module is
    that common substrate, extracted so {!Experiment} and
    {!Crash_surface} drive scenarios identically (a crash-point verdict
    is only comparable to a sampled-trial verdict if both audits use the
    same client-side record). *)

type tracking = {
  model : (int, string) Hashtbl.t;
      (** expected store contents implied by acknowledged writes *)
  mutable acked : int list;  (** acknowledged write-transaction ids *)
  mutable window_start : Desim.Time.t option;
  mutable window_end : Desim.Time.t option;
  mutable in_window : int;
  latencies : Desim.Stats.Sample.t;
}

val make_tracking : unit -> tracking

val record_ack : tracking -> Desim.Sim.t -> Dbms.Engine.txn_result -> unit
(** Fold one acknowledged transaction into the client-side record; reads
    and aborted transactions leave the model untouched. When a
    {!Desim.Journal} is recording, the acknowledgement (txid plus
    encoded writes) is journaled at the same instant. *)

val encode_ack_writes : (int * string option) list -> string
(** The wire form of a transaction's writes inside a journal [Ack]
    record. *)

val decode_ack_writes : string -> (int * string option) list
(** Inverse of {!encode_ack_writes}; the crash-surface reconstruction
    replays the client-side model from these. *)

val spawn_loader : Scenario.built -> tracking -> after_load:(unit -> unit) -> unit
(** Populate the schema through ordinary transactions in a guest
    process, then call [after_load] (still inside the process). *)

val spawn_clients : Scenario.built -> tracking -> unit
(** Launch the scenario's load: closed-loop clients (optionally gated
    by the config's {!Workload.Churn} schedule), or — when the config's
    arrival axis is {!Workload.Arrival.Open_loop} — an arrival
    dispatcher feeding a [clients]-wide worker pool, with each
    acknowledgement's latency recorded as the arrival-to-ack sojourn
    (queue wait included). Every commit is folded into [tracking].
    This is the single spawn point every experiment shares, so a new
    arrival process automatically inherits the steady-state runs, the
    crash-surface sweep and the perf gates. *)
