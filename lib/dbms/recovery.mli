(** ARIES-style crash recovery.

    Given the *durable* (post-crash media) contents of the log and data
    devices, recovery rebuilds the database state that the committed
    transactions define:

    + {b scan} — read the durable log region and decode records until the
      first invalid one (the CRC cuts off a torn tail);
    + {b analysis} — classify transactions into committed / aborted /
      losers (no outcome record in the durable log);
    + {b redo} — repeating history from the master block's redo point:
      re-apply every update whose LSN is beyond the containing page's
      [page_lsn];
    + {b undo} — roll back the losers' updates in reverse LSN order using
      the logged before-images (strict 2PL guarantees a loser's update is
      the last durable-logged write of its key, so reverse application is
      exact).

    The result also reports what was scanned and applied, which the
    durability audit and the recovery experiments inspect. *)

type result = {
  store : (int, string) Hashtbl.t;  (** recovered key → value *)
  records : (Log_record.t * Lsn.t) list;
      (** the decoded durable log, for audits that need per-transaction
          write sets *)
  parities : (int, int) Hashtbl.t;
      (** for each page with an intact on-device image: which of its two
          slots holds the newest one (the restart path's flushes must
          avoid overwriting it) *)
  committed : int list;  (** txids with a durable commit record, ascending *)
  aborted : int list;
  losers : int list;
  durable_records : int;  (** records decoded before the log ended *)
  durable_end : Lsn.t;  (** LSN of the durable log prefix *)
  redo_start : Lsn.t;
  redo_applied : int;
  undo_applied : int;
  pages_loaded : int;
}

type replay_stats = {
  s_durable_records : int;
  s_durable_bytes : int;  (** LSN of the durable log prefix *)
  s_committed : int;
  s_aborted : int;
  s_losers : int;
  s_redo_applied : int;
  s_undo_applied : int;
  s_pages_loaded : int;
  s_store_keys : int;
}
(** A flat scalar summary of one recovery pass — what the crash-surface
    sweep records per crash point, and what two runs over the same media
    must reproduce identically (recovery is a pure function of durable
    media). *)

val stats : result -> replay_stats

val pp_stats : Format.formatter -> replay_stats -> unit

val run :
  log_device:Storage.Block.t ->
  data_device:Storage.Block.t ->
  wal_config:Wal.config ->
  pool_config:Buffer_pool.config ->
  result
(** Pure inspection of durable media: callable from any context and at
    any simulated time (normally after a crash). *)

val read_durable_log : log_device:Storage.Block.t -> wal_config:Wal.config -> string
(** The raw durable log stream bytes; exposed for tests. *)

val scan_records :
  log_device:Storage.Block.t -> wal_config:Wal.config -> (Log_record.t * Lsn.t) list
(** Chunked scan of the durable log: decodes records incrementally and
    stops at the first invalid one, reading only slightly past the valid
    log even when the device's written extent is much larger (the
    single-disk layout). This is what {!run} uses. *)

(** Incremental recovery over a monotonically growing base media image,
    for sweeps that run recovery at many nearby crash points. A
    {!Incremental.shared} value, built once per reference run from the
    "future stream" (every byte the run ever pushes at its log, latest
    version winning), holds the decoded record array and the
    transaction/page position indexes every point's scan and analysis
    reduce to. A cursor-local {!Incremental.t} adds byte watermarks
    that certify each point's durable log is a verified prefix of the
    stream, plus redo state repeated once over the evolving base data
    volume and patched per point at page granularity. Each {!run}
    produces a {!result} identical (counters included) to what the
    sequential {!run} returns on the same media — the crash sweep's
    differential oracle compares the two bit-for-bit. See the
    implementation comment for the exact sharing discipline. *)
module Incremental : sig
  type shared
  (** Immutable per-reference-run state; safe to share across domains. *)

  val prepare :
    wal_config:Wal.config ->
    pool_config:Buffer_pool.config ->
    log_sector_size:int ->
    future:string ->
    shared
  (** [future] is the reference run's log stream image: every push's
      payload blitted at its stream offset (offset 0 =
      [log_start_lba]), later pushes overwriting earlier ones. *)

  type t

  val create : shared -> data_base:Storage.Block.t -> t
  (** [data_base] must read through to the evolving base data volume:
      the cache re-probes invalidated pages after every
      {!note_data_write}. *)

  val note_log_write : t -> lba:int -> data:string -> unit
  (** A write became durable on the base log device: verify it against
      the future stream and advance (or, on a stale tail sector,
      retract) the base watermark. *)

  val note_push : t -> lba:int -> data:string -> unit
  (** The logger buffered a log write: verify it against the future
      stream and advance the push watermark, below which per-point
      replayed drain writes are trusted without comparison. *)

  val note_data_write : t -> lba:int -> sectors:int -> unit
  (** A write became durable at [lba] (data-volume address space) on
      the base data volume: invalidate the cached pages whose slots it
      intersects. *)

  val run :
    t ->
    log_overlay:(int * string * int * bool) list ->
    data_overlay:(int * int) list ->
    log_device:Storage.Block.t ->
    data_device:Storage.Block.t ->
    result
  (** Recovery over the point's media: the base image plus the point's
      overlays. [log_overlay] lists the point's log-device writes as
      [(lba, data, persisted_sectors, push_derived)] in application
      order — exactly what [log_device] layers over the base;
      [push_derived] marks writes whose bytes replay buffered pushes
      (trusted below the push watermark; recorded device batches with
      possibly-stale tail sectors must pass [false] and are compared
      directly). [data_overlay] lists the point's data-volume writes as
      [(lba, sectors)] ranges in the data volume's address space.
      [log_device] and [data_device] are the point's frozen devices
      (master-block reads, page loads, extents). *)

  val rebuilds : t -> int
  (** Times the shared redo state was rebuilt from scratch after a
      master-block move (diagnostic; never on the sweep's workloads). *)

  val fork : t -> data_base:Storage.Block.t -> t
  (** An independent deep copy of the cursor: watermarks, redo state and
      every cached page are duplicated, so {!run} and note calls on
      either side never disturb the other. [data_base] must be the
      fork's own frozen device over a media snapshot taken at the same
      boundary (see {!Storage.Block.Media.fork}). The immutable
      {!shared} stays shared. The fork-based crash sweep hands one fork
      per candidate chunk to its worker domains. *)
end
