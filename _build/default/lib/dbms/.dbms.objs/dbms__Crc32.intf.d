lib/dbms/crc32.mli:
