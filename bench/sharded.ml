(* RapiLog-S: machine-readable evidence for the sharded multi-tenant
   logger tier (PR 9).

   The tentpole claims, with teeth:

   - scale: a 10k-tenant / 100k-open-loop-client cell on 8 shards
     against a single-shard control carrying the identical load. The
     control's aggregate byte rate deliberately exceeds one 7200 rpm
     disk's streaming bandwidth, so its p99 blows up under
     backpressure; the sharded tier keeps every shard's rate well
     under the disk and its p99 must not regress past the control —
     that asymmetry is the scale argument, and the per-tenant audit
     must find zero contract breaks on both cells.
   - noisy-neighbor: extra clients overload one hot tenant's shard.
     Latency pain must stay confined to the hot shard (its p99 above
     every other shard's) and durability must not degrade anywhere —
     overload shows up as queue wait, never as a lost ack.
   - rebalance: a mid-run registry split moves half a shard's buckets
     to another shard while traffic flows; every tenant's recovered
     prefix must still be complete after the move.
   - crash sweep: the full-replay crash-surface sweep over a sharded
     scenario (os-crash, power-cut, tight power-cut at every strided
     event boundary) must hold every per-tenant contract at every
     explored point. (The journal-reconstruction engine models a
     single trusted logger; the sharded tier runs S of them, so this
     sweep uses full replay per point.)
   - determinism: the cell grid fanned over {!Harness.Parallel} at
     jobs=4 must be digest-identical to jobs=1, and a cell run with
     {!Desim.Metrics} recording on must be digest-identical to one
     with it off while populating the shard.* registry entries.

   Writes a JSON report (default BENCH_PR9.json). With --check it
   self-validates so `dune runtest` keeps the harness honest.

   Usage: sharded.exe [--quick] [--check] [--jobs N] [--output PATH] *)

open Desim
open Harness
open Harness.Json

(* -- the cell grid ----------------------------------------------------- *)

let scale_tier ~quick ~shards ~tenants =
  {
    Shard.Tier.default_config with
    Shard.Tier.shards;
    tenants;
    clients = 10 * tenants;  (* 100k open-loop clients at the full 10k *)
    mean_interval = (if quick then Time.ms 8 else Time.ms 100);
    payload_bytes = (if quick then 1024 else 128);
    horizon = (if quick then Time.ms 60 else Time.ms 150);
  }

let scale_cells ~quick ~shards ~tenants =
  [
    {
      Shard.Cell.c_name = "scale-sharded";
      c_tier = scale_tier ~quick ~shards ~tenants;
      c_seed = 90_0901L;
      c_fault = Shard.Cell.no_fault;
    };
    {
      Shard.Cell.c_name = "scale-control";
      c_tier = scale_tier ~quick ~shards:1 ~tenants;
      c_seed = 90_0901L;
      c_fault = Shard.Cell.no_fault;
    };
  ]

let noisy_cell ~quick =
  {
    Shard.Cell.c_name = "noisy-neighbor";
    c_tier =
      {
        Shard.Tier.default_config with
        Shard.Tier.shards = 4;
        tenants = 64;
        clients = 128;
        mean_interval = Time.ms 4;
        payload_bytes = 128;
        horizon = (if quick then Time.ms 60 else Time.ms 150);
        hot_tenant = 1;
        hot_clients = 64;
        hot_interval = Time.us 200;
      };
    c_seed = 90_0902L;
    c_fault = Shard.Cell.no_fault;
  }

let rebalance_cell ~quick =
  let horizon = if quick then Time.ms 80 else Time.ms 200 in
  let split_at = if quick then Time.ms 40 else Time.ms 100 in
  {
    Shard.Cell.c_name = "rebalance-split";
    c_tier =
      {
        Shard.Tier.default_config with
        Shard.Tier.shards = 2;
        tenants = 64;
        clients = 256;
        mean_interval = Time.ms 2;
        payload_bytes = 128;
        horizon;
      };
    c_seed = 90_0903L;
    c_fault =
      {
        Shard.Cell.no_fault with
        Shard.Cell.f_split_at = Some (split_at, 0, 1);
      };
  }

let cell_grid ~quick ~shards ~tenants =
  scale_cells ~quick ~shards ~tenants
  @ [ noisy_cell ~quick; rebalance_cell ~quick ]

let cell_json (r : Shard.Cell.result) =
  let s = r.Shard.Cell.r_stats in
  let a = r.Shard.Cell.r_audit in
  Obj
    [
      ("name", Str r.Shard.Cell.r_name);
      ("seed", Num (Int64.to_float r.Shard.Cell.r_seed));
      ("submitted", Num (float_of_int r.Shard.Cell.r_submitted));
      ("acked", Num (float_of_int r.Shard.Cell.r_acked));
      ("p50_us", Num s.Shard.Tier.st_p50_us);
      ("p99_us", Num s.Shard.Tier.st_p99_us);
      ( "shard_acked",
        Arr
          (Array.to_list
             (Array.map (fun n -> Num (float_of_int n)) s.Shard.Tier.st_shard_acked))
      );
      ( "shard_p99_us",
        Arr
          (Array.to_list
             (Array.map (fun v -> Num v) s.Shard.Tier.st_shard_p99_us)) );
      ("active_tenants", Num (float_of_int s.Shard.Tier.st_active_tenants));
      ("tenant_p99_med_us", Num s.Shard.Tier.st_tenant_p99_med_us);
      ("tenant_p99_max_us", Num s.Shard.Tier.st_tenant_p99_max_us);
      ("recovered", Num (float_of_int a.Shard.Recover.a_recovered));
      ("lost", Num (float_of_int a.Shard.Recover.a_lost));
      ("extra", Num (float_of_int a.Shard.Recover.a_extra));
      ("tenant_breaks", Num (float_of_int a.Shard.Recover.a_breaks));
      ("min_prefix_ratio", Num a.Shard.Recover.a_min_prefix_ratio);
      ("buckets_moved", Num (float_of_int r.Shard.Cell.r_buckets_moved));
      ("events", Num (float_of_int r.Shard.Cell.r_events));
      ("sim_clock_ms", Num (float_of_int r.Shard.Cell.r_clock_ns /. 1e6));
    ]

(* -- the sharded crash sweep ------------------------------------------- *)

let sweep_scenario ~quick =
  {
    Scenario.default with
    Scenario.mode = Scenario.Rapilog_sharded;
    workload =
      Scenario.Micro
        {
          Workload.Microbench.default_config with
          Workload.Microbench.keys = 64;
          value_bytes = 32;
        };
    clients = 2;
    seed = 90_3301L;
    warmup = Time.ms 1;
    duration = (if quick then Time.ms 10 else Time.ms 30);
    shard =
      {
        Shard.Tier.default_config with
        Shard.Tier.shards = 2;
        tenants = 8;
        clients = 12;
        mean_interval = Time.ms 1;
        payload_bytes = 96;
      };
  }

let sweep_config ~quick scenario =
  {
    (Crash_surface.default scenario) with
    Crash_surface.window_start = Time.ms 2;
    window_length = (if quick then Time.ms 3 else Time.ms 12);
  }

let autostride config ~target =
  let total =
    List.fold_left
      (fun acc kind ->
        acc + (Crash_surface.enumerate config kind).Crash_surface.e_boundaries)
      0 config.Crash_surface.kinds
  in
  (total, max 1 (total / target))

let sweep_json (r : Crash_surface.result) ~tenant_acked ~tenant_lost
    ~tenant_breaks =
  Obj
    [
      ("mode", Str (Scenario.mode_name r.Crash_surface.r_mode));
      ("stride", Num (float_of_int r.Crash_surface.r_stride));
      ("total_boundaries", Num (float_of_int r.Crash_surface.r_total_boundaries));
      ("explored", Num (float_of_int r.Crash_surface.r_explored));
      ("contract_breaks", Num (float_of_int r.Crash_surface.r_contract_breaks));
      ("lost_total", Num (float_of_int r.Crash_surface.r_lost_total));
      ("tenant_acked_total", Num (float_of_int tenant_acked));
      ("tenant_lost_total", Num (float_of_int tenant_lost));
      ("tenant_breaks_total", Num (float_of_int tenant_breaks));
      ( "kinds",
        Arr
          (List.map
             (fun (k : Crash_surface.kind_summary) ->
               Obj
                 [
                   ("kind", Str (Crash_surface.kind_name k.Crash_surface.k_kind));
                   ("boundaries", Num (float_of_int k.Crash_surface.k_boundaries));
                   ("explored", Num (float_of_int k.Crash_surface.k_explored));
                   ( "contract_breaks",
                     Num (float_of_int k.Crash_surface.k_contract_breaks) );
                 ])
             r.Crash_surface.r_kinds) );
    ]

(* -- main --------------------------------------------------------------- *)

let usage () =
  print_endline
    "usage: sharded.exe [--quick] [--check] [--jobs N] [--shards S] \
     [--tenants T] [--output PATH]";
  exit 2

let () =
  let quick = ref false in
  let check = ref false in
  let jobs = ref (Parallel.default_jobs ()) in
  let shards = ref 8 in
  let tenants = ref None in
  let output = ref "BENCH_PR9.json" in
  let pos_int r n =
    match int_of_string_opt n with
    | Some n when n >= 1 -> r := n
    | _ -> usage ()
  in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest -> quick := true; parse rest
    | "--check" :: rest -> check := true; parse rest
    | "--jobs" :: n :: rest -> pos_int jobs n; parse rest
    | "--shards" :: n :: rest -> pos_int shards n; parse rest
    | "--tenants" :: n :: rest ->
        let r = ref 0 in
        pos_int r n;
        tenants := Some !r;
        parse rest
    | "--output" :: path :: rest -> output := path; parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let quick = !quick in
  let shards = !shards in
  let tenants =
    match !tenants with Some t -> t | None -> if quick then 200 else 10_000
  in
  let failures = ref [] in
  let fail msg = failures := msg :: !failures in

  (* -- the cell grid, serial then fanned over the worker pool --------- *)
  let grid = cell_grid ~quick ~shards ~tenants in
  let t0 = Unix.gettimeofday () in
  let serial = Parallel.map ~jobs:1 Shard.Cell.run grid in
  let serial_s = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  let parallel = Parallel.map ~jobs:4 Shard.Cell.run grid in
  let parallel_s = Unix.gettimeofday () -. t1 in
  let digests = List.map Shard.Cell.digest in
  let jobs_identical = digests serial = digests parallel in
  let find name =
    List.find (fun r -> r.Shard.Cell.r_name = name) serial
  in
  let sharded = find "scale-sharded" in
  let control = find "scale-control" in
  let noisy = find "noisy-neighbor" in
  let rebalance = find "rebalance-split" in
  List.iter
    (fun (r : Shard.Cell.result) ->
      let s = r.Shard.Cell.r_stats in
      Printf.printf
        "sharded: %-16s %7d submitted, %7d acked, p99 %8.0f us, tenant-p99 \
         med %8.0f max %8.0f us, %d active tenants, %d lost, %d breaks\n%!"
        r.Shard.Cell.r_name r.Shard.Cell.r_submitted r.Shard.Cell.r_acked
        s.Shard.Tier.st_p99_us s.Shard.Tier.st_tenant_p99_med_us
        s.Shard.Tier.st_tenant_p99_max_us s.Shard.Tier.st_active_tenants
        r.Shard.Cell.r_audit.Shard.Recover.a_lost
        r.Shard.Cell.r_audit.Shard.Recover.a_breaks)
    serial;
  Printf.printf
    "sharded: grid of %d cells: jobs=1 %.2fs, jobs=4 %.2fs, digest-identical: \
     %b\n%!"
    (List.length grid) serial_s parallel_s jobs_identical;

  (* The overload arithmetic behind the control cell: its aggregate
     arrival byte rate (encoded Update+Commit pairs) must exceed one
     disk's streaming bandwidth, while the 8-shard tier's per-shard
     share stays well under — otherwise the p99 comparison proves
     nothing about sharding. *)
  let tier = (List.hd (scale_cells ~quick ~shards ~tenants)).Shard.Cell.c_tier in
  let pair_bytes =
    let txid = Rapilog.Tenant.pack ~tenant:1 ~seq:1 in
    let payload = String.make tier.Shard.Tier.payload_bytes 's' in
    Dbms.Log_record.encoded_size
      (Dbms.Log_record.Update { txid; key = 1; before = ""; after = payload })
    + Dbms.Log_record.encoded_size (Dbms.Log_record.Commit { txid })
  in
  let arrival_rate =
    float_of_int tier.Shard.Tier.clients
    /. Time.span_to_float_sec tier.Shard.Tier.mean_interval
  in
  let aggregate_mb_s = arrival_rate *. float_of_int pair_bytes /. 1e6 in
  let disk_mb_s =
    Scenario.hdd_streaming_bandwidth Storage.Hdd.default_7200rpm /. 1e6
  in
  let per_shard_mb_s = aggregate_mb_s /. float_of_int shards in
  Printf.printf
    "sharded: offered load %.1f MB/s aggregate (%.1f MB/s per shard of %d) vs \
     %.1f MB/s disk streaming bandwidth\n%!"
    aggregate_mb_s per_shard_mb_s shards disk_mb_s;

  (* -- metrics determinism -------------------------------------------- *)
  let det_cell = noisy_cell ~quick in
  let plain = Shard.Cell.run det_cell in
  let registry = Metrics.create () in
  let with_metrics =
    Metrics.with_recording registry (fun () -> Shard.Cell.run det_cell)
  in
  let metrics_identical =
    Shard.Cell.digest plain = Shard.Cell.digest with_metrics
  in
  let metric_names = Metrics.names registry in
  let required_metrics =
    [ "shard.append_us"; "shard.submitted"; "shard.acked"; "shard.tenant_p99_us" ]
  in
  let missing_metrics =
    List.filter (fun n -> not (List.mem n metric_names)) required_metrics
  in
  Printf.printf
    "sharded: metrics-on digest-identical: %b; shard spans recorded: %s\n%!"
    metrics_identical
    (String.concat ", "
       (List.filter (fun n -> List.mem n metric_names) required_metrics));

  (* -- the sharded crash-surface sweep --------------------------------- *)
  let scenario = sweep_scenario ~quick in
  let surface = sweep_config ~quick scenario in
  let boundaries, stride =
    autostride surface ~target:(if quick then 9 else 36)
  in
  let surface = { surface with Crash_surface.stride } in
  Printf.printf "sharded: crash surface has %d boundaries, stride %d...\n%!"
    boundaries stride;
  let t2 = Unix.gettimeofday () in
  let sweep = Crash_surface.sweep ~jobs:!jobs surface in
  let sweep_s = Unix.gettimeofday () -. t2 in
  let tenant_acked, tenant_lost, tenant_breaks =
    List.fold_left
      (fun (a, l, b) v ->
        ( a + v.Crash_surface.v_tenant_acked,
          l + v.Crash_surface.v_tenant_lost,
          b + v.Crash_surface.v_tenant_breaks ))
      (0, 0, 0) sweep.Crash_surface.r_verdicts
  in
  Printf.printf
    "sharded: crash sweep: %d/%d boundaries, %d contract breaks, %d tenant \
     entries lost across %d tenant acks (%.2fs)\n%!"
    sweep.Crash_surface.r_explored sweep.Crash_surface.r_total_boundaries
    sweep.Crash_surface.r_contract_breaks tenant_lost tenant_acked sweep_s;

  let report =
    Obj
      [
        ("pr", Num 9.);
        ("harness", Str "sharded.exe");
        ("quick", Bool quick);
        ("jobs", Num (float_of_int !jobs));
        ( "scale",
          Obj
            [
              ("shards", Num (float_of_int shards));
              ("tenants", Num (float_of_int tier.Shard.Tier.tenants));
              ("clients", Num (float_of_int tier.Shard.Tier.clients));
              ("offered_mb_s", Num aggregate_mb_s);
              ("per_shard_mb_s", Num per_shard_mb_s);
              ("disk_streaming_mb_s", Num disk_mb_s);
              ("sharded", cell_json sharded);
              ("control", cell_json control);
            ] );
        ("noisy_neighbor", cell_json noisy);
        ("rebalance", cell_json rebalance);
        ( "crash_sweep",
          Obj
            [
              ("result", sweep_json sweep ~tenant_acked ~tenant_lost ~tenant_breaks);
              ("seconds", Num sweep_s);
            ] );
        ( "determinism",
          Obj
            [
              ("cells_jobs_digest_identical", Bool jobs_identical);
              ("metrics_digest_identical", Bool metrics_identical);
              ("metrics_missing", Arr (List.map (fun n -> Str n) missing_metrics));
              ("serial_seconds", Num serial_s);
              ("parallel_seconds", Num parallel_s);
            ] );
      ]
  in
  let text = Json.to_string report in
  let oc = open_out !output in
  output_string oc text;
  close_out oc;
  Printf.printf "sharded: wrote %s\n%!" !output;

  if !check then begin
    (match Json.of_string text with
    | exception Json.Parse_error msg ->
        fail (Printf.sprintf "report is not valid JSON: %s" msg)
    | Obj _ -> ()
    | _ -> fail "report is not a JSON object");
    (* Per-tenant contracts: nothing acknowledged may be missing from
       any cell's merged per-shard recovery. *)
    List.iter
      (fun (r : Shard.Cell.result) ->
        let a = r.Shard.Cell.r_audit in
        if a.Shard.Recover.a_lost <> 0 || a.Shard.Recover.a_breaks <> 0 then
          fail
            (Printf.sprintf "%s: %d tenant entries lost across %d tenants (want 0)"
               r.Shard.Cell.r_name a.Shard.Recover.a_lost a.Shard.Recover.a_breaks);
        if r.Shard.Cell.r_acked <= 0 then
          fail (Printf.sprintf "%s: acknowledged nothing" r.Shard.Cell.r_name))
      serial;
    (* Scale: every tenant active, the control genuinely overloaded, and
       the sharded p99 not regressed past the single-shard control. *)
    if
      sharded.Shard.Cell.r_stats.Shard.Tier.st_active_tenants
      < tier.Shard.Tier.tenants
    then
      fail
        (Printf.sprintf "scale-sharded: only %d of %d tenants saw an ack"
           sharded.Shard.Cell.r_stats.Shard.Tier.st_active_tenants
           tier.Shard.Tier.tenants);
    if aggregate_mb_s <= disk_mb_s then
      fail
        (Printf.sprintf
           "control cell is not overloaded (%.1f MB/s offered <= %.1f MB/s \
            disk): the p99 comparison proves nothing"
           aggregate_mb_s disk_mb_s);
    if per_shard_mb_s >= disk_mb_s then
      fail
        (Printf.sprintf
           "sharded cell is overloaded per shard (%.1f MB/s >= %.1f MB/s)"
           per_shard_mb_s disk_mb_s);
    let sharded_p99 = sharded.Shard.Cell.r_stats.Shard.Tier.st_p99_us in
    let control_p99 = control.Shard.Cell.r_stats.Shard.Tier.st_p99_us in
    if not (sharded_p99 < control_p99) then
      fail
        (Printf.sprintf
           "sharded p99 %.0f us regressed vs single-shard control %.0f us"
           sharded_p99 control_p99);
    (* Noisy neighbor: the hot shard hurts, the others do not. *)
    let ns = noisy.Shard.Cell.r_stats in
    let hot = ref 0 in
    Array.iteri
      (fun i acked ->
        if acked > ns.Shard.Tier.st_shard_acked.(!hot) then hot := i
        else ignore acked)
      ns.Shard.Tier.st_shard_acked;
    Array.iteri
      (fun i p99 ->
        if i <> !hot && not (p99 < ns.Shard.Tier.st_shard_p99_us.(!hot)) then
          fail
            (Printf.sprintf
               "noisy-neighbor: shard %d p99 %.0f us not below hot shard %d \
                p99 %.0f us — overload leaked across shards"
               i p99 !hot ns.Shard.Tier.st_shard_p99_us.(!hot)))
      ns.Shard.Tier.st_shard_p99_us;
    (* Rebalance: the split actually moved buckets, and hurt no tenant. *)
    if rebalance.Shard.Cell.r_buckets_moved < 1 then
      fail "rebalance-split moved no buckets";
    if rebalance.Shard.Cell.r_audit.Shard.Recover.a_min_prefix_ratio < 1.0 then
      fail
        (Printf.sprintf
           "rebalance-split: a tenant's recovered prefix covers only %.2f of \
            its submissions"
           rebalance.Shard.Cell.r_audit.Shard.Recover.a_min_prefix_ratio);
    (* The crash sweep: per-tenant contracts at every explored boundary,
       with enough boundaries and real tenant traffic to mean it. *)
    if sweep.Crash_surface.r_contract_breaks <> 0 then
      fail
        (Printf.sprintf "crash sweep found %d contract breaks (want 0)"
           sweep.Crash_surface.r_contract_breaks);
    if tenant_lost <> 0 || tenant_breaks <> 0 then
      fail
        (Printf.sprintf "crash sweep lost %d tenant entries (%d tenant breaks)"
           tenant_lost tenant_breaks);
    if tenant_acked <= 0 then
      fail "crash sweep saw no tenant acks (teeth are missing)";
    if sweep.Crash_surface.r_explored < (if quick then 6 else 24) then
      fail
        (Printf.sprintf "crash sweep explored only %d points"
           sweep.Crash_surface.r_explored);
    if not jobs_identical then
      fail "cell grid differs between jobs=1 and jobs=4";
    if not metrics_identical then
      fail "metrics recording perturbed a cell run";
    if missing_metrics <> [] then
      fail
        (Printf.sprintf "shard spans missing from the registry: %s"
           (String.concat ", " missing_metrics));
    match !failures with
    | [] -> print_endline "sharded: check OK"
    | msgs ->
        List.iter (fun m -> Printf.eprintf "sharded: CHECK FAILED: %s\n" m) msgs;
        exit 1
  end
  else
    match !failures with
    | [] -> ()
    | msgs ->
        List.iter (fun m -> Printf.eprintf "sharded: WARNING: %s\n" m) msgs
